// hwverify demonstrates the EDA workload that motivates the paper:
// combinational equivalence checking (CEC). A miter circuit XORs the
// outputs of two implementations over shared inputs; the designs are
// equivalent exactly when the miter is unsatisfiable. Learned-clause
// management dominates solver effort on such structured instances.
package main

import (
	"fmt"
	"log"
	"time"

	"neuroselect"
	"neuroselect/internal/gen"
	"neuroselect/internal/solver"
)

func check(name string, f *neuroselect.Formula, policy string) {
	start := time.Now()
	res, err := neuroselect.Solve(f, neuroselect.SolveConfig{Policy: policy})
	if err != nil {
		log.Fatal(err)
	}
	verdict := "NOT EQUIVALENT (counterexample exists)"
	if res.Status == neuroselect.Unsat {
		verdict = "EQUIVALENT"
	}
	fmt.Printf("  %-28s %-36s conflicts=%6d props=%8d  %v\n",
		name, verdict, res.Stats.Conflicts, res.Stats.Propagations, time.Since(start).Round(time.Microsecond))
	if res.Status == neuroselect.Sat {
		// The model restricted to the primary inputs is the distinguishing
		// input vector.
		fmt.Print("    distinguishing inputs:")
		for v := 1; v <= 8 && v <= f.NumVars; v++ {
			fmt.Printf(" x%d=%v", v, res.Model[v])
		}
		fmt.Println()
	}
}

func main() {
	fmt.Println("Combinational equivalence checking with NeuroSelect's solver")

	// Golden design vs. an identical copy: the miter must be UNSAT.
	equiv := gen.Miter(10, 120, false, 17)
	fmt.Printf("case 1: %s (golden vs. identical copy)\n", equiv.Name)
	check("default deletion policy", equiv.F, "default")
	check("frequency deletion policy", equiv.F, "frequency")

	// Golden design vs. a copy with one injected gate fault: usually SAT,
	// and the satisfying assignment is a distinguishing test vector — the
	// classic ATPG connection.
	faulty := gen.Miter(10, 120, true, 17)
	fmt.Printf("case 2: %s (golden vs. fault-injected copy)\n", faulty.Name)
	check("default deletion policy", faulty.F, "default")

	// Incremental cofactor analysis on the faulty miter: one solver
	// instance answers many assumption queries (the workhorse pattern of
	// industrial CEC/ATPG). SAT cofactors contain counterexamples; UNSAT
	// ones report which assumptions blocked the difference.
	fmt.Println("case 3: incremental cofactor queries on the faulty miter")
	s, err := solver.New(faulty.F, solver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for v := 1; v <= 3; v++ {
		for _, a := range []neuroselect.Lit{neuroselect.Lit(v), -neuroselect.Lit(v)} {
			st, core := s.SolveUnderAssumptions([]neuroselect.Lit{a})
			if st == solver.Unsat {
				fmt.Printf("  assume x%d=%v: UNSAT (no counterexample in this cofactor; core %v)\n",
					v, a > 0, core)
			} else {
				fmt.Printf("  assume x%d=%v: %v\n", v, a > 0, st)
			}
		}
	}
}
