// hwverify demonstrates the EDA workload that motivates the paper:
// combinational equivalence checking (CEC). A miter circuit XORs the
// outputs of two implementations over shared inputs; the designs are
// equivalent exactly when the miter is unsatisfiable. Learned-clause
// management dominates solver effort on such structured instances.
package main

import (
	"fmt"
	"log"
	"time"

	"neuroselect"
	"neuroselect/internal/aiger"
	"neuroselect/internal/gen"
	"neuroselect/internal/solver"
)

func check(name string, f *neuroselect.Formula, policy string) {
	start := time.Now()
	res, err := neuroselect.Solve(f, neuroselect.SolveConfig{Policy: policy})
	if err != nil {
		log.Fatal(err)
	}
	verdict := "NOT EQUIVALENT (counterexample exists)"
	if res.Status == neuroselect.Unsat {
		verdict = "EQUIVALENT"
	}
	fmt.Printf("  %-28s %-36s conflicts=%6d props=%8d  %v\n",
		name, verdict, res.Stats.Conflicts, res.Stats.Propagations, time.Since(start).Round(time.Microsecond))
	if res.Status == neuroselect.Sat {
		// The model restricted to the primary inputs is the distinguishing
		// input vector.
		fmt.Print("    distinguishing inputs:")
		for v := 1; v <= 8 && v <= f.NumVars; v++ {
			fmt.Printf(" x%d=%v", v, res.Model[v])
		}
		fmt.Println()
	}
}

func main() {
	fmt.Println("Combinational equivalence checking with NeuroSelect's solver")

	// Golden design vs. an identical copy: the miter must be UNSAT.
	equiv := gen.Miter(10, 120, false, 17)
	fmt.Printf("case 1: %s (golden vs. identical copy)\n", equiv.Name)
	check("default deletion policy", equiv.F, "default")
	check("frequency deletion policy", equiv.F, "frequency")

	// Golden design vs. a copy with one injected gate fault: usually SAT,
	// and the satisfying assignment is a distinguishing test vector — the
	// classic ATPG connection.
	faulty := gen.Miter(10, 120, true, 17)
	fmt.Printf("case 2: %s (golden vs. fault-injected copy)\n", faulty.Name)
	check("default deletion policy", faulty.F, "default")

	// Incremental cofactor analysis on the faulty miter: one solver
	// instance answers many assumption queries (the workhorse pattern of
	// industrial CEC/ATPG). SAT cofactors contain counterexamples; UNSAT
	// ones report which assumptions blocked the difference.
	fmt.Println("case 3: incremental cofactor queries on the faulty miter")
	s, err := solver.New(faulty.F, solver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for v := 1; v <= 3; v++ {
		for _, a := range []neuroselect.Lit{neuroselect.Lit(v), -neuroselect.Lit(v)} {
			st, core := s.SolveUnderAssumptions([]neuroselect.Lit{a})
			if st == solver.Unsat {
				fmt.Printf("  assume x%d=%v: UNSAT (no counterexample in this cofactor; core %v)\n",
					v, a > 0, core)
			} else {
				fmt.Printf("  assume x%d=%v: %v\n", v, a > 0, st)
			}
		}
	}

	// Bounded model checking by incremental unrolling: the transition
	// relation of a counter that adds 1 or 2 per step (choice adversarial)
	// is stamped one time frame at a time into a single warm solver via
	// AddClause; each depth then refutes the invariant "value 2k+1 is
	// unreachable" without re-solving the prefix. A Push/Pop frame checks a
	// retractable side property — clauses added under the frame vanish at
	// Pop, so deepening continues on the same solver afterwards.
	const width, steps = 7, 12
	fmt.Printf("case 4: BMC unrolling of an add-1-or-2 counter (width %d, %d steps, one warm solver)\n", width, steps)
	u, err := aiger.NewUnroller(aiger.CounterAIG(width), width)
	if err != nil {
		log.Fatal(err)
	}
	bmc, err := solver.New(neuroselect.NewFormula(0), solver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range u.Init(0) {
		if err := bmc.AddClause(c); err != nil {
			log.Fatal(err)
		}
	}
	start := time.Now()
	for k := 1; k <= steps; k++ {
		clauses, _ := u.Step()
		for _, c := range clauses {
			if err := bmc.AddClause(c); err != nil {
				log.Fatal(err)
			}
		}
		st, _ := bmc.SolveUnderAssumptions(u.StateEquals(uint64(2*k + 1)))
		fmt.Printf("  depth %2d: value %3d unreachable: %v  (conflicts=%d, added clauses=%d)\n",
			k, 2*k+1, st == solver.Unsat, bmc.Stats().Conflicts, bmc.Stats().AddedClauses)
	}
	fmt.Printf("  %d depths checked incrementally in %v\n", steps, time.Since(start).Round(time.Microsecond))

	// Retractable property via an assumption frame: pin the final state to
	// its maximum 2k under a Push frame (SAT — every step chose +2), then
	// Pop and confirm the pin is gone.
	bmc.Push()
	for _, l := range u.StateEquals(uint64(2 * steps)) {
		if err := bmc.AddClause(neuroselect.Clause{l}); err != nil {
			log.Fatal(err)
		}
	}
	st, _ := bmc.SolveUnderAssumptions(nil)
	fmt.Printf("  frame property (final value = %d forced): %v with frame open", 2*steps, st)
	bmc.Pop()
	st2, _ := bmc.SolveUnderAssumptions(u.StateEquals(uint64(steps)))
	fmt.Printf(", value %d reachable again after Pop: %v\n", steps, st2 == solver.Sat)
}
