// Benchmarks regenerating every table and figure of the paper's evaluation
// section (one benchmark per artifact), plus ablation benches for the
// design choices called out in DESIGN.md. Each iteration performs a full
// (quick-scale) regeneration of the artifact; run with -benchtime=1x for a
// single regeneration or via cmd/experiments for the paper-shaped scale.
package neuroselect_test

import (
	"io"
	"testing"

	"neuroselect/internal/core"
	"neuroselect/internal/dataset"
	"neuroselect/internal/deletion"
	"neuroselect/internal/experiments"
	"neuroselect/internal/gen"
	"neuroselect/internal/satgraph"
	"neuroselect/internal/solver"
)

// benchScale is shared by the experiment benchmarks; small enough that a
// full regeneration fits in a benchmark iteration.
func benchScale() experiments.Scale {
	s := experiments.QuickScale()
	s.Corpus.TrainStrata = 2
	s.Corpus.PerStratum = 4
	s.Corpus.TestSize = 5
	s.Corpus.MaxConflicts = 10000
	s.ScatterBudget = 10000
	s.Train.Epochs = 2
	s.BaselineEpochs = 1
	return s
}

// BenchmarkFigure3PropagationFrequency regenerates the Figure 3
// propagation-frequency distribution.
func BenchmarkFigure3PropagationFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchScale())
		res, err := r.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		if res.TopShare <= 0 {
			b.Fatal("degenerate distribution")
		}
	}
}

// BenchmarkFigure4PolicyScatter regenerates the Figure 4 default-vs-new
// policy scatter.
func BenchmarkFigure4PolicyScatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchScale())
		res, err := r.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFigure5ScorePacking measures the packed 64-bit scoring of both
// Figure 5 layouts (the per-clause cost paid at every reduction).
func BenchmarkFigure5ScorePacking(b *testing.B) {
	def, freq := deletion.DefaultPolicy{}, deletion.FrequencyPolicy{}
	ci := deletion.ClauseInfo{Glue: 5, Size: 17, Frequency: 3}
	var sink uint64
	for i := 0; i < b.N; i++ {
		ci.Glue = i & 63
		sink += def.Score(ci) ^ freq.Score(ci)
	}
	_ = sink
}

// BenchmarkTable1DatasetStats regenerates the Table 1 dataset statistics
// (corpus generation + dual-policy labeling).
func BenchmarkTable1DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchScale())
		res, err := r.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable2Classifiers regenerates the Table 2 four-way classifier
// comparison (train + evaluate all models).
func BenchmarkTable2Classifiers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchScale())
		res, err := r.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 4 {
			b.Fatal("missing classifier rows")
		}
	}
}

// BenchmarkFigure7Portfolio regenerates Figure 7 (portfolio scatter and
// box-plot data); Table 3 derives from the same run.
func BenchmarkFigure7Portfolio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchScale())
		res, err := r.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.InferenceMS) == 0 {
			b.Fatal("no inference samples")
		}
	}
}

// BenchmarkTable3RuntimeStats regenerates the Table 3 summary via the
// shared Figure 7 pipeline and renders it.
func BenchmarkTable3RuntimeStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchScale())
		res, err := r.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if res.Render() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkRunAllQuick regenerates every artifact in one pass, as
// cmd/experiments does.
func BenchmarkRunAllQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchScale())
		if err := r.RunAll(io.Discard, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md "design choices" section) ---

// BenchmarkAblationAttentionOn/Off measure the inference cost of the
// attention block the paper restricts to variable nodes.
func benchmarkModelForward(b *testing.B, attention bool) {
	cfg := core.Config{Hidden: 16, HGTLayers: 2, MPLayers: 2, Attention: attention, Seed: 1}
	m := core.NewModel(cfg)
	g := satgraph.BuildVCG(gen.RandomKSAT(300, 1278, 3, 9).F)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := m.PredictGraph(g); p < 0 {
			b.Fatal("bad probability")
		}
	}
}

// BenchmarkAblationAttentionOn measures inference with global attention.
func BenchmarkAblationAttentionOn(b *testing.B) { benchmarkModelForward(b, true) }

// BenchmarkAblationAttentionOff measures inference without it.
func BenchmarkAblationAttentionOff(b *testing.B) { benchmarkModelForward(b, false) }

// BenchmarkAblationAttentionComplexity verifies the linear-attention cost
// scales linearly in the variable count (§4.3 complexity analysis): ns/op
// should grow ~2× per size doubling.
func BenchmarkAblationAttentionComplexity(b *testing.B) {
	for _, n := range []int{100, 200, 400, 800} {
		g := satgraph.BuildVCG(gen.RandomKSAT(n, int(4.26*float64(n)), 3, 5).F)
		m := core.NewModel(core.Config{Hidden: 16, HGTLayers: 1, MPLayers: 1, Attention: true, Seed: 1})
		b.Run(benchName("vars", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.PredictGraph(g)
			}
		})
	}
}

// BenchmarkAblationAlphaSweep solves a fixed instance under the frequency
// policy for several α values of Eq. 2 (the paper fixes α = 4/5).
func BenchmarkAblationAlphaSweep(b *testing.B) {
	inst := gen.RandomKSAT(120, 511, 3, 7)
	for _, alpha := range []float64{0.5, 0.7, 0.8, 0.9} {
		b.Run(benchName("alpha100x", int(alpha*100)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := dataset.SolveOptions(deletion.FrequencyPolicy{}, 60000)
				opts.Alpha = alpha
				res, err := solver.Solve(inst.F, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.Propagations), "props")
			}
		})
	}
}

// BenchmarkAblationScoreLayouts compares the scoring cost of all deletion
// policies.
func BenchmarkAblationScoreLayouts(b *testing.B) {
	policies := []deletion.Policy{
		deletion.DefaultPolicy{}, deletion.FrequencyPolicy{},
		deletion.ActivityPolicy{}, deletion.SizePolicy{},
	}
	ci := deletion.ClauseInfo{Glue: 4, Size: 11, Activity: 2.5, Frequency: 2}
	for _, p := range policies {
		b.Run(p.Name(), func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= p.Score(ci)
			}
			_ = sink
		})
	}
}

// BenchmarkAblationReduceFraction sweeps the clause-database reduce
// fraction (DESIGN.md ablation 5).
func BenchmarkAblationReduceFraction(b *testing.B) {
	inst := gen.RandomKSAT(120, 511, 3, 8)
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		b.Run(benchName("frac100x", int(frac*100)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := dataset.SolveOptions(deletion.DefaultPolicy{}, 60000)
				opts.ReduceFraction = frac
				res, err := solver.Solve(inst.F, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.Propagations), "props")
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
