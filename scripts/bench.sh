#!/bin/sh
# Benchmark trajectory gate: runs the solver and DRAT benchmark suites and
# distills `go test -bench` output into machine-readable BENCH_solver.json
# so successive PRs can diff ns/op, allocs/op, and solver throughput
# (props/sec, conflicts/sec) per generator family instead of eyeballing
# raw benchmark logs.
#
# Usage: ./scripts/bench.sh [benchtime]      (default 1s; use e.g. 3s for
# lower-variance numbers, 1x for a smoke run). Writes BENCH_solver.json in
# the repo root (override the path with BENCH_OUT=..., as check.sh's
# regression gate does) and echoes the raw benchmark lines as they arrive.
set -eu

BENCHTIME="${1:-1s}"
OUT="${BENCH_OUT:-BENCH_solver.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" \
	./internal/solver ./internal/drat | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
	function family(name) {
		if (name ~ /Random3SAT/ || name ~ /ReduceCost/) return "random3sat"
		if (name ~ /Pigeonhole/) return "pigeonhole"
		if (name ~ /Miter/) return "miter"
		if (name ~ /Tseitin/) return "tseitin"
		if (name ~ /Propagation/) return "chain"
		if (name ~ /EmitAndCheck/ || name ~ /RUPCheck/) return "drat"
		return "other"
	}
	function jsonkey(unit) {
		gsub(/\//, "_per_", unit)
		gsub(/-/, "_", unit)
		return unit
	}
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)           # strip the -GOMAXPROCS suffix
		sub(/^Benchmark/, "", name)
		printf "%s", (n++ ? ",\n" : "")
		printf "    {\"name\": \"%s\", \"family\": \"%s\", \"iterations\": %s", \
			name, family(name), $2
		# remaining fields come in value/unit pairs: 1234 ns/op 56 B/op ...
		for (i = 3; i + 1 <= NF; i += 2)
			printf ", \"%s\": %s", jsonkey($(i + 1)), $i
		printf "}"
	}
	END {
		if (n == 0) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
		print ""
	}
' "$RAW" > "$OUT.tmp"

{
	echo "{"
	echo "  \"benchtime\": \"$BENCHTIME\","
	echo "  \"go\": \"$(go env GOVERSION)\","
	echo "  \"benchmarks\": ["
	cat "$OUT.tmp"
	echo "  ]"
	echo "}"
} > "$OUT"
rm -f "$OUT.tmp"

echo "wrote $OUT"
