#!/bin/sh
# Benchmark trajectory gate: runs the solver and DRAT benchmark suites and
# distills `go test -bench` output into machine-readable BENCH_solver.json
# so successive PRs can diff ns/op, allocs/op, and solver throughput
# (props/sec, conflicts/sec) per generator family instead of eyeballing
# raw benchmark logs.
#
# Usage: ./scripts/bench.sh [benchtime]      (default 1s; use e.g. 3s for
# lower-variance numbers, 1x for a smoke run). Writes BENCH_solver.json in
# the repo root (override the path with BENCH_OUT=..., as check.sh's
# regression gate does) and echoes the raw benchmark lines as they arrive.
#
# BENCH_COUNT=N (default 3) runs each benchmark N times and keeps the
# fastest sample per benchmark: scheduler preemption and frequency
# scaling only ever ADD time, so min-of-N is the low-variance estimator
# of a benchmark's true cost — a single sample can swing ±20% on a busy
# host and fail the delta gate on unchanged code.
set -eu

BENCHTIME="${1:-1s}"
COUNT="${BENCH_COUNT:-3}"
OUT="${BENCH_OUT:-BENCH_solver.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" -count "$COUNT" \
	./internal/solver ./internal/drat ./internal/portfolio | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
	function family(name) {
		if (name ~ /^Portfolio/) return "portfolio"
		if (name ~ /^Incremental/) return "incremental"
		if (name ~ /Random3SAT/ || name ~ /ReduceCost/) return "random3sat"
		if (name ~ /Pigeonhole/) return "pigeonhole"
		if (name ~ /Miter/) return "miter"
		if (name ~ /Tseitin/) return "tseitin"
		if (name ~ /Propagation/) return "chain"
		if (name ~ /EmitAndCheck/ || name ~ /RUPCheck/) return "drat"
		return "other"
	}
	function jsonkey(unit) {
		gsub(/\//, "_per_", unit)
		gsub(/-/, "_", unit)
		return unit
	}
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)           # strip the -GOMAXPROCS suffix
		sub(/^Benchmark/, "", name)
		rec = sprintf("{\"name\": \"%s\", \"family\": \"%s\", \"iterations\": %s", \
			name, family(name), $2)
		# remaining fields come in value/unit pairs: 1234 ns/op 56 B/op ...
		ns = 0
		for (i = 3; i + 1 <= NF; i += 2) {
			if ($(i + 1) == "ns/op") ns = $i + 0
			rec = rec sprintf(", \"%s\": %s", jsonkey($(i + 1)), $i)
		}
		rec = rec "}"
		# -count samples repeat each name; keep the fastest (min ns/op).
		if (!(name in bestns)) order[++n] = name
		if (!(name in bestns) || ns < bestns[name]) {
			bestns[name] = ns
			best[name] = rec
		}
	}
	END {
		if (n == 0) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
		for (i = 1; i <= n; i++)
			printf "    %s%s\n", best[order[i]], (i < n ? "," : "")
	}
' "$RAW" > "$OUT.tmp"

{
	echo "{"
	echo "  \"benchtime\": \"$BENCHTIME\","
	echo "  \"count\": $COUNT,"
	echo "  \"go\": \"$(go env GOVERSION)\","
	echo "  \"benchmarks\": ["
	cat "$OUT.tmp"
	echo "  ]"
	echo "}"
} > "$OUT"
rm -f "$OUT.tmp"

echo "wrote $OUT"
