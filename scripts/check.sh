#!/bin/sh
# Tier-1 gate: build, vet, full test suite, the race detector on the
# concurrency-bearing packages (portfolio racing, the sweep engine, the
# experiments runner, solver cancellation), and a coverage gate on the
# experiments package. Run from the repo root via `make check` or
# `./scripts/check.sh`.
set -eu

# Statement-coverage floor for neuroselect/internal/experiments. The
# pre-sweep-engine suite sat below this; the sweep engine's determinism,
# fault-injection, and sharding paths pushed it past 90%, and this gate
# keeps future changes from silently shedding that coverage.
EXPERIMENTS_COVER_FLOOR=85.0

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (concurrency-bearing packages)"
go test -race ./internal/experiments ./internal/portfolio \
	./internal/sweep ./internal/metrics ./internal/dataset \
	./internal/solver ./internal/faultpoint

echo "== benchmark smoke (1 iteration per benchmark)"
go test -run '^$' -bench . -benchtime 1x ./internal/solver ./internal/drat > /dev/null

echo "== coverage (experiments + sweep engine)"
COVER_PROFILE="$(mktemp)"
trap 'rm -f "$COVER_PROFILE"' EXIT
go test -count=1 -covermode=atomic -coverprofile="$COVER_PROFILE" \
	./internal/experiments ./internal/sweep ./internal/metrics

awk -F: -v floor="$EXPERIMENTS_COVER_FLOOR" '
	{
		# profile lines: path:start,end numStmts hitCount
		if ($1 ~ /^neuroselect\/internal\/experiments\//) {
			split($2, f, " ")
			total += f[2]
			if (f[3] > 0) covered += f[2]
		}
	}
	END {
		if (total == 0) { print "coverage gate: no experiments statements in profile"; exit 1 }
		pct = 100 * covered / total
		printf "experiments statement coverage: %.1f%% (floor %.1f%%)\n", pct, floor
		if (pct < floor) { print "coverage gate: FAIL — below floor"; exit 1 }
	}' "$COVER_PROFILE"

echo "check: all gates passed"
