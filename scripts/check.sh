#!/bin/sh
# Tier-1 gate: build, vet, full test suite, then the race detector on the
# concurrency-bearing packages (portfolio racing, experiments runner,
# solver cancellation). Run from the repo root via `make check` or
# `./scripts/check.sh`.
set -eu

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (concurrency-bearing packages)"
go test -race ./internal/portfolio/... ./internal/experiments/... ./internal/solver/... ./internal/faultpoint/...

echo "check: all gates passed"
