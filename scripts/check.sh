#!/bin/sh
# Tier-1 gate: build, vet, full test suite, the race detector on the
# concurrency-bearing packages (portfolio racing, the sweep engine, the
# experiments runner, solver cancellation, registry scrapes, the HTTP
# server), a live metrics-endpoint smoke test, a portfolio determinism
# smoke (php-9 under -portfolio -deterministic must be byte-identical
# across runs and worker counts), an end-to-end smoke of the solving
# service (cache hit, queue shedding, SIGTERM drain), an incremental
# warm-session smoke (a session's steps must answer exactly like cold
# solves of the equivalent accumulated formulas, and an idle session
# must expire after -session-ttl), an SSE telemetry smoke (live window
# events over GET /v1/jobs/{id}/events, a done event byte-identical to
# the poll body, moving stream metrics, JSON access lines), a chaos smoke
# (kill -9 mid-solve, restart over the same -journal directory, the job
# must still complete), a cluster smoke (coordinator + 2 replicas:
# sticky consistent-hash routing, a cache hit served through the proxy,
# failover after killing the owning replica, SIGTERM drain of the whole
# topology), three documentation gates (package comments, README flag
# freshness, API.md metric freshness), a benchmark regression gate
# against BENCH_solver.json (skip with BENCH_DELTA_SKIP=1), and coverage
# gates on the experiments and portfolio packages. Run from the repo
# root via `make check` or `./scripts/check.sh`.
set -eu

# Statement-coverage floor for neuroselect/internal/experiments. The
# pre-sweep-engine suite sat below this; the sweep engine's determinism,
# fault-injection, and sharding paths pushed it past 90%, and this gate
# keeps future changes from silently shedding that coverage.
EXPERIMENTS_COVER_FLOOR=85.0

# Statement-coverage floor for neuroselect/internal/portfolio. The
# N-worker portfolio suite (determinism goldens, differential oracle,
# cancellation/drain/faultpoint robustness) measures 88.5%; the floor
# leaves headroom for incidental drift but catches a shed test suite.
PORTFOLIO_COVER_FLOOR=80.0

COVER_PROFILE=""
SMOKE_DIR=""
SMOKE_PID=""
SERVE_PID=""
R1_PID=""
R2_PID=""
COORD_PID=""
cleanup() {
	if [ -n "$SMOKE_PID" ]; then
		kill "$SMOKE_PID" 2>/dev/null || true
	fi
	if [ -n "$SERVE_PID" ]; then
		kill -9 "$SERVE_PID" 2>/dev/null || true
	fi
	for pid in $R1_PID $R2_PID $COORD_PID; do
		kill -9 "$pid" 2>/dev/null || true
	done
	if [ -n "$SMOKE_DIR" ]; then
		rm -rf "$SMOKE_DIR"
	fi
	if [ -n "$COVER_PROFILE" ]; then
		rm -f "$COVER_PROFILE"
	fi
}
trap cleanup EXIT

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (concurrency-bearing packages)"
go test -race ./internal/experiments ./internal/portfolio \
	./internal/sweep ./internal/metrics ./internal/dataset \
	./internal/solver ./internal/faultpoint ./internal/obs \
	./internal/server ./internal/aiger ./internal/cluster

echo "== benchmark smoke (1 iteration per benchmark)"
go test -run '^$' -bench . -benchtime 1x ./internal/solver ./internal/drat \
	./internal/portfolio > /dev/null

echo "== metrics endpoint smoke (satsolve -metrics-addr)"
SMOKE_DIR="$(mktemp -d)"
go build -o "$SMOKE_DIR/satsolve" ./cmd/satsolve
go run ./cmd/satgen -family pigeonhole -n 9 > "$SMOKE_DIR/php9.cnf"
# A hard pigeonhole instance keeps the solver generating conflicts while we
# scrape; the timeout is a backstop — the smoke kills the solve once the
# counters have been observed moving.
"$SMOKE_DIR/satsolve" -metrics-addr 127.0.0.1:0 -model=false -timeout 120s \
	"$SMOKE_DIR/php9.cnf" > "$SMOKE_DIR/out.txt" &
SMOKE_PID=$!

addr=""
i=0
while [ -z "$addr" ] && [ "$i" -lt 100 ]; do
	addr="$(sed -n 's/^c metrics listening on //p' "$SMOKE_DIR/out.txt" 2>/dev/null)"
	if [ -z "$addr" ]; then
		sleep 0.1
	fi
	i=$((i + 1))
done
if [ -z "$addr" ]; then
	echo "metrics smoke: FAIL — satsolve never announced its listen address"
	exit 1
fi

curl -fsS "http://$addr/healthz" | grep -qx ok || {
	echo "metrics smoke: FAIL — /healthz did not answer ok"
	exit 1
}

ok=0
i=0
while [ "$i" -lt 100 ]; do
	if curl -fsS "http://$addr/metrics" 2>/dev/null | awk '
		$1 == "neuroselect_solver_conflicts_total" && $2 + 0 > 0 { found = 1 }
		END { exit(found ? 0 : 1) }'; then
		ok=1
		break
	fi
	sleep 0.1
	i=$((i + 1))
done
if [ "$ok" != 1 ]; then
	echo "metrics smoke: FAIL — /metrics conflicts counter never became nonzero"
	exit 1
fi
kill "$SMOKE_PID" 2>/dev/null || true
wait "$SMOKE_PID" 2>/dev/null || true
SMOKE_PID=""
echo "metrics smoke: /healthz ok, solver counters live at http://$addr/metrics"

echo "== portfolio determinism smoke (-portfolio -deterministic byte-identical)"
# The lockstep portfolio promises byte-identical output — answer, stats,
# exchange ledgers, propFreq hash — for any worker count and across
# repeated runs. Diff php-9 solved twice at -portfolio 4 and once at
# -portfolio 2: any wall-clock leak or scheduling dependence breaks the
# diff. (php9.cnf and the satsolve binary come from the metrics smoke.)
for run in det1 det2 det3; do
	case "$run" in
	det3) pn=2 ;;
	*) pn=4 ;;
	esac
	rc=0
	"$SMOKE_DIR/satsolve" -portfolio "$pn" -deterministic -stats -stats-json \
		"$SMOKE_DIR/php9.cnf" > "$SMOKE_DIR/$run.txt" || rc=$?
	if [ "$rc" != 20 ]; then
		echo "portfolio smoke: FAIL — php-9 run $run exited $rc, want 20 (UNSAT)"
		exit 1
	fi
done
cmp -s "$SMOKE_DIR/det1.txt" "$SMOKE_DIR/det2.txt" || {
	echo "portfolio smoke: FAIL — two -portfolio 4 -deterministic runs differ"
	diff "$SMOKE_DIR/det1.txt" "$SMOKE_DIR/det2.txt" | head -5
	exit 1
}
cmp -s "$SMOKE_DIR/det1.txt" "$SMOKE_DIR/det3.txt" || {
	echo "portfolio smoke: FAIL — -portfolio 4 and -portfolio 2 outputs differ"
	diff "$SMOKE_DIR/det1.txt" "$SMOKE_DIR/det3.txt" | head -5
	exit 1
}
echo "portfolio smoke: php-9 byte-identical across runs and worker counts"

echo "== package-doc gate (every package states its role)"
fail=0
for d in . internal/* cmd/*; do
	ls "$d"/*.go >/dev/null 2>&1 || continue
	if ! grep -q -E '^// (Package|Command) ' "$d"/*.go; then
		echo "package-doc gate: FAIL — $d has no package comment"
		fail=1
	fi
done
if [ "$fail" != 0 ]; then
	exit 1
fi
echo "package-doc gate: all packages documented"

echo "== docs-freshness gate (every cmd/* flag appears in README's flag tables)"
fail=0
for f in cmd/*/main.go; do
	cmdname="$(basename "$(dirname "$f")")"
	# Top-level flags only: subcommand FlagSets (fs.String) document
	# themselves via their own -h and are out of the README tables' scope.
	flags="$(grep -oE 'flag\.(String|Bool|Int64|Int|Duration|Float64)\("[a-z][a-z0-9-]*"' "$f" |
		cut -d'"' -f2 | sort -u)"
	for fl in $flags; do
		if ! grep -q -- "\`-$fl\`" README.md; then
			echo "docs gate: FAIL — flag -$fl of cmd/$cmdname is not documented in README.md"
			fail=1
		fi
	done
done
if [ "$fail" != 0 ]; then
	exit 1
fi
echo "docs gate: every cmd flag documented"

echo "== docs-freshness gate (every registered metric name appears in API.md)"
# Every metric-name string literal in the serving/telemetry packages must
# be documented (backticked) in API.md's metric tables — a new series
# without documentation, or a renamed one leaving a stale row, fails here.
fail=0
metric_files="$(find internal/obs internal/server internal/cluster \
	-name '*.go' ! -name '*_test.go')"
metrics="$(grep -hoE '"(neuroselect|process|go)_[a-z_]+"' $metric_files |
	tr -d '"' | sort -u)"
for mname in $metrics; do
	if ! grep -q -- "\`$mname\`" API.md; then
		echo "docs gate: FAIL — metric $mname is not documented in API.md"
		fail=1
	fi
done
if [ "$fail" != 0 ]; then
	exit 1
fi
echo "docs gate: every registered metric documented in API.md ($(echo "$metrics" | wc -l | tr -d ' ') series)"

echo "== solving-service smoke (neuroselect-serve end to end)"
if [ -z "$SMOKE_DIR" ]; then
	SMOKE_DIR="$(mktemp -d)"
fi
go build -o "$SMOKE_DIR/neuroselect-serve" ./cmd/neuroselect-serve
go run ./cmd/satgen -family pigeonhole -n 7 > "$SMOKE_DIR/php7.cnf"
go run ./cmd/satgen -family pigeonhole -n 8 > "$SMOKE_DIR/php8.cnf"
go run ./cmd/satgen -family pigeonhole -n 12 > "$SMOKE_DIR/php12.cnf"
"$SMOKE_DIR/neuroselect-serve" -addr 127.0.0.1:0 -workers 2 -queue 1 \
	-metrics-addr 127.0.0.1:0 > "$SMOKE_DIR/serve.txt" 2>&1 &
SERVE_PID=$!

api=""
i=0
while [ -z "$api" ] && [ "$i" -lt 100 ]; do
	api="$(sed -n 's/^solving API listening on //p' "$SMOKE_DIR/serve.txt" 2>/dev/null)"
	[ -n "$api" ] || sleep 0.1
	i=$((i + 1))
done
if [ -z "$api" ]; then
	echo "serve smoke: FAIL — server never announced its listen address"
	exit 1
fi
maddr="$(sed -n 's/^metrics listening on //p' "$SMOKE_DIR/serve.txt")"

# Concurrent solves: two clients at once, both must decide php-8 UNSAT.
curl -fsS --data-binary @"$SMOKE_DIR/php8.cnf" "http://$api/v1/solve" \
	> "$SMOKE_DIR/r1.json" &
c1=$!
curl -fsS --data-binary @"$SMOKE_DIR/php8.cnf" "http://$api/v1/solve?policy=frequency" \
	> "$SMOKE_DIR/r2.json" &
c2=$!
wait "$c1" "$c2"
grep -q '"status":"UNSAT"' "$SMOKE_DIR/r1.json" || {
	echo "serve smoke: FAIL — php-8 did not solve UNSAT: $(cat "$SMOKE_DIR/r1.json")"
	exit 1
}
grep -q '"status":"UNSAT"' "$SMOKE_DIR/r2.json" || {
	echo "serve smoke: FAIL — php-8 under ?policy=frequency did not solve UNSAT"
	exit 1
}

# Duplicate upload: identical body served from the cache with X-Cache: hit.
curl -fsS -D "$SMOKE_DIR/hdr.txt" --data-binary @"$SMOKE_DIR/php8.cnf" \
	"http://$api/v1/solve" > "$SMOKE_DIR/r3.json"
grep -qi '^x-cache: hit' "$SMOKE_DIR/hdr.txt" || {
	echo "serve smoke: FAIL — duplicate instance was not served from the cache"
	exit 1
}
cmp -s "$SMOKE_DIR/r1.json" "$SMOKE_DIR/r3.json" || {
	echo "serve smoke: FAIL — cache hit body differs from the original response"
	exit 1
}

# Queue overflow: flood 2 workers + 1 queue slot with hard *distinct*
# jobs until the admission queue sheds a request with 429. Identical
# uploads would not do: they singleflight-share the first job instead of
# queueing behind it.
for n in 10 11 13 14; do
	go run ./cmd/satgen -family pigeonhole -n "$n" > "$SMOKE_DIR/php$n.cnf"
done
shed=""
for n in 12 10 11 13 14; do
	code="$(curl -s -o /dev/null -w '%{http_code}' \
		--data-binary @"$SMOKE_DIR/php$n.cnf" "http://$api/v1/jobs?timeout=5s")"
	if [ "$code" = 429 ]; then
		shed=yes
	fi
done
if [ -z "$shed" ]; then
	echo "serve smoke: FAIL — queue overflow never returned 429"
	exit 1
fi

# The request counter on /metrics moved.
curl -fsS "http://$maddr/metrics" | awk '
	$1 ~ /^neuroselect_server_requests_total/ { sum += $2 }
	END { exit(sum > 0 ? 0 : 1) }' || {
	echo "serve smoke: FAIL — neuroselect_server_requests_total never moved"
	exit 1
}

# SIGTERM drains: an in-flight job finishes with a result, then the
# process exits 0 on its own. The flood above left the pool saturated,
# so retry the submit until the 5s-bounded php-12 jobs free a slot.
jid=""
i=0
while [ -z "$jid" ] && [ "$i" -lt 300 ]; do
	jid="$(curl -s --data-binary @"$SMOKE_DIR/php7.cnf" \
		"http://$api/v1/jobs?policy=size" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
	[ -n "$jid" ] || sleep 0.1
	i=$((i + 1))
done
if [ -z "$jid" ]; then
	echo "serve smoke: FAIL — async submit never admitted after the flood"
	exit 1
fi
kill -TERM "$SERVE_PID"
done_status=""
i=0
while [ -z "$done_status" ] && [ "$i" -lt 200 ]; do
	poll="$(curl -s "http://$api/v1/jobs/$jid" 2>/dev/null || true)"
	case "$poll" in
	*'"status":"done"'*) done_status="$poll" ;;
	*) sleep 0.1 ;;
	esac
	i=$((i + 1))
done
case "$done_status" in
*'"status":"UNSAT"'*) : ;;
*)
	echo "serve smoke: FAIL — in-flight job dropped during drain: $done_status"
	exit 1
	;;
esac
rc=0
wait "$SERVE_PID" || rc=$?
SERVE_PID=""
if [ "$rc" != 0 ]; then
	echo "serve smoke: FAIL — server exited $rc after drain"
	exit 1
fi
echo "serve smoke: concurrent solves, cache hit, 429 shedding, SIGTERM drain all ok"

echo "== incremental-session smoke (warm steps match cold solves, idle TTL expiry)"
# An implication chain 1->2->3->4: under the assumptions below every
# variable is forced, so a warm incremental step and a cold solve of the
# equivalent formula (added clauses + assumptions as root units) must
# agree not just on status but literal-for-literal on the model.
printf 'p cnf 4 3\n-1 2 0\n-2 3 0\n-3 4 0\n' > "$SMOKE_DIR/chain.cnf"
"$SMOKE_DIR/neuroselect-serve" -addr 127.0.0.1:0 -workers 2 -session-ttl 2s \
	> "$SMOKE_DIR/serve_sess.txt" 2>&1 &
SERVE_PID=$!
api=""
i=0
while [ -z "$api" ] && [ "$i" -lt 100 ]; do
	api="$(sed -n 's/^solving API listening on //p' "$SMOKE_DIR/serve_sess.txt" 2>/dev/null)"
	[ -n "$api" ] || sleep 0.1
	i=$((i + 1))
done
if [ -z "$api" ]; then
	echo "session smoke: FAIL — server never announced its listen address"
	exit 1
fi
sid="$(curl -s --data-binary @"$SMOKE_DIR/chain.cnf" "http://$api/v1/sessions" |
	sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
if [ -z "$sid" ]; then
	echo "session smoke: FAIL — session create returned no id"
	exit 1
fi
# answer_of FILE: the (status, model) pair a solve response carries.
answer_of() {
	printf '%s %s\n' \
		"$(grep -o '"status":"[A-Z]*"' "$1")" \
		"$(grep -o '"model":\[[^]]*\]' "$1")"
}
# Three incremental steps: assumptions only, then a permanent added
# clause, then another. Each cold reference is the chain plus every
# clause added so far plus this step's assumptions as unit clauses.
step() { # step N json cold_extra_units...
	n="$1"
	body="$2"
	shift 2
	curl -s -d "$body" "http://$api/v1/sessions/$sid/solve" \
		> "$SMOKE_DIR/warm$n.json"
	{
		printf 'p cnf 4 %d\n-1 2 0\n-2 3 0\n-3 4 0\n' $((3 + $#))
		for u in "$@"; do printf '%s 0\n' "$u"; done
	} > "$SMOKE_DIR/cold$n.cnf"
	curl -s --data-binary @"$SMOKE_DIR/cold$n.cnf" "http://$api/v1/solve" \
		> "$SMOKE_DIR/cold$n.json"
	warm="$(answer_of "$SMOKE_DIR/warm$n.json")"
	cold="$(answer_of "$SMOKE_DIR/cold$n.json")"
	if [ -z "$warm" ] || [ "$warm" != "$cold" ]; then
		echo "session smoke: FAIL — step $n warm answer ($warm) != cold ($cold)"
		exit 1
	fi
}
step 1 '{"assumptions":[1]}' 1
step 2 '{"add":[[-1]],"assumptions":[-2,-3,-4]}' -1 -2 -3 -4
step 3 '{"add":[[3]],"assumptions":[-2]}' -1 3 -2
# Idle TTL: the reaper must expire the session. Poll the info endpoint —
# it reports idle time without refreshing the TTL, so polling cannot keep
# the session alive — then confirm a solve on the expired id is 404 too.
gone=""
i=0
while [ -z "$gone" ] && [ "$i" -lt 100 ]; do
	code="$(curl -s -o /dev/null -w '%{http_code}' "http://$api/v1/sessions/$sid")"
	if [ "$code" = 404 ]; then
		gone=yes
	else
		sleep 0.1
	fi
	i=$((i + 1))
done
if [ -z "$gone" ]; then
	echo "session smoke: FAIL — session never expired after the 2s idle TTL"
	exit 1
fi
code="$(curl -s -o /dev/null -w '%{http_code}' -d '{}' \
	"http://$api/v1/sessions/$sid/solve")"
if [ "$code" != 404 ]; then
	echo "session smoke: FAIL — solve on an expired session returned $code, want 404"
	exit 1
fi
kill -TERM "$SERVE_PID"
rc=0
wait "$SERVE_PID" || rc=$?
SERVE_PID=""
if [ "$rc" != 0 ]; then
	echo "session smoke: FAIL — server exited $rc after drain"
	exit 1
fi
echo "session smoke: 3 warm steps matched cold solves, idle session expired"

echo "== SSE telemetry smoke (live event stream, done==poll, access log)"
# A hard 6s-bounded job streamed over GET /v1/jobs/{id}/events: window
# events must arrive while the solve runs, the stream must end with a
# done event whose data is byte-identical to the poll body, the stream
# counters must move on /metrics, and -log-format json must produce
# structured access lines on stderr.
"$SMOKE_DIR/neuroselect-serve" -addr 127.0.0.1:0 -workers 1 \
	-metrics-addr 127.0.0.1:0 -log-format json \
	> "$SMOKE_DIR/serve_sse.txt" 2> "$SMOKE_DIR/serve_sse.log" &
SERVE_PID=$!
api=""
i=0
while [ -z "$api" ] && [ "$i" -lt 100 ]; do
	api="$(sed -n 's/^solving API listening on //p' "$SMOKE_DIR/serve_sse.txt" 2>/dev/null)"
	[ -n "$api" ] || sleep 0.1
	i=$((i + 1))
done
if [ -z "$api" ]; then
	echo "sse smoke: FAIL — server never announced its listen address"
	exit 1
fi
maddr="$(sed -n 's/^metrics listening on //p' "$SMOKE_DIR/serve_sse.txt")"
jid="$(curl -s --data-binary @"$SMOKE_DIR/php12.cnf" \
	"http://$api/v1/jobs?timeout=6s" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
if [ -z "$jid" ]; then
	echo "sse smoke: FAIL — async submit was not acknowledged"
	exit 1
fi
curl -sN -m 60 "http://$api/v1/jobs/$jid/events" > "$SMOKE_DIR/sse.txt" &
CURL_PID=$!
# Live mid-solve events: a window rollup must stream in well before the
# job's 6s bound expires.
live=""
i=0
while [ -z "$live" ] && [ "$i" -lt 50 ]; do
	if grep -q '^event: window' "$SMOKE_DIR/sse.txt" 2>/dev/null; then
		live=yes
	else
		sleep 0.1
	fi
	i=$((i + 1))
done
if [ -z "$live" ]; then
	echo "sse smoke: FAIL — no window event streamed while the job ran"
	exit 1
fi
rc=0
wait "$CURL_PID" || rc=$?
if [ "$rc" != 0 ]; then
	echo "sse smoke: FAIL — event stream did not end cleanly (curl exited $rc)"
	exit 1
fi
# The final done event's data is the poll body, byte for byte (both
# command substitutions strip the same trailing newline).
done_data="$(sed -n '/^event: done$/{n;s/^data: //p;}' "$SMOKE_DIR/sse.txt")"
poll_body="$(curl -s "http://$api/v1/jobs/$jid")"
if [ -z "$done_data" ]; then
	echo "sse smoke: FAIL — stream ended without a done event"
	exit 1
fi
if [ "$done_data" != "$poll_body" ]; then
	echo "sse smoke: FAIL — done event diverges from poll body"
	echo " done: $done_data"
	echo " poll: $poll_body"
	exit 1
fi
curl -fsS "http://$maddr/metrics" | awk '
	$1 ~ /^neuroselect_server_event_stream_events_total/ { sum += $2 }
	END { exit(sum > 0 ? 0 : 1) }' || {
	echo "sse smoke: FAIL — event_stream_events_total never moved"
	exit 1
}
if ! grep -q '"msg":"request"' "$SMOKE_DIR/serve_sse.log"; then
	echo "sse smoke: FAIL — -log-format json produced no access lines"
	exit 1
fi
if ! grep -q '"request_id":' "$SMOKE_DIR/serve_sse.log"; then
	echo "sse smoke: FAIL — access lines carry no request_id"
	exit 1
fi
kill -TERM "$SERVE_PID"
rc=0
wait "$SERVE_PID" || rc=$?
SERVE_PID=""
if [ "$rc" != 0 ]; then
	echo "sse smoke: FAIL — server exited $rc after drain"
	exit 1
fi
echo "sse smoke: live window events, done==poll byte-identical, stream metrics, JSON access log all ok"

echo "== chaos smoke (kill -9 crash recovery over the job journal)"
JDIR="$SMOKE_DIR/journal"
go run ./cmd/satgen -family pigeonhole -n 9 > "$SMOKE_DIR/php9.cnf"
"$SMOKE_DIR/neuroselect-serve" -addr 127.0.0.1:0 -workers 1 -journal "$JDIR" \
	> "$SMOKE_DIR/serve2.txt" 2>&1 &
SERVE_PID=$!
api=""
i=0
while [ -z "$api" ] && [ "$i" -lt 100 ]; do
	api="$(sed -n 's/^solving API listening on //p' "$SMOKE_DIR/serve2.txt" 2>/dev/null)"
	[ -n "$api" ] || sleep 0.1
	i=$((i + 1))
done
if [ -z "$api" ]; then
	echo "chaos smoke: FAIL — journaled server never announced its listen address"
	exit 1
fi
# An 8s-bounded hard instance: long enough to be mid-solve when killed,
# bounded enough that the replayed attempt finishes promptly.
jid="$(curl -s --data-binary @"$SMOKE_DIR/php9.cnf" \
	"http://$api/v1/jobs?timeout=8s" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
if [ -z "$jid" ]; then
	echo "chaos smoke: FAIL — async submit was not acknowledged"
	exit 1
fi
running=""
i=0
while [ -z "$running" ] && [ "$i" -lt 100 ]; do
	case "$(curl -s "http://$api/v1/jobs/$jid")" in
	*'"status":"running"'* | *'"status":"done"'*) running=yes ;;
	*) sleep 0.1 ;;
	esac
	i=$((i + 1))
done
if [ -z "$running" ]; then
	echo "chaos smoke: FAIL — journaled job never started running"
	exit 1
fi
# Crash: no drain, no journal close — the acknowledged job must survive.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
"$SMOKE_DIR/neuroselect-serve" -addr 127.0.0.1:0 -workers 1 -journal "$JDIR" \
	> "$SMOKE_DIR/serve3.txt" 2>&1 &
SERVE_PID=$!
api=""
i=0
while [ -z "$api" ] && [ "$i" -lt 100 ]; do
	api="$(sed -n 's/^solving API listening on //p' "$SMOKE_DIR/serve3.txt" 2>/dev/null)"
	[ -n "$api" ] || sleep 0.1
	i=$((i + 1))
done
if [ -z "$api" ]; then
	echo "chaos smoke: FAIL — restarted server never announced its listen address"
	exit 1
fi
done_poll=""
i=0
while [ -z "$done_poll" ] && [ "$i" -lt 200 ]; do
	poll="$(curl -s "http://$api/v1/jobs/$jid" 2>/dev/null || true)"
	case "$poll" in
	*'"status":"done"'*) done_poll="$poll" ;;
	*) sleep 0.1 ;;
	esac
	i=$((i + 1))
done
case "$done_poll" in
*'"result"'*) : ;;
*)
	echo "chaos smoke: FAIL — replayed job $jid never completed: $done_poll"
	exit 1
	;;
esac
kill -TERM "$SERVE_PID"
rc=0
wait "$SERVE_PID" || rc=$?
SERVE_PID=""
if [ "$rc" != 0 ]; then
	echo "chaos smoke: FAIL — restarted server exited $rc after drain"
	exit 1
fi
# A clean drain compacts the journal down to nothing pending.
if grep -q '"type":"submit"' "$JDIR/journal.jsonl" 2>/dev/null; then
	echo "chaos smoke: FAIL — journal still holds pending submits after drain"
	exit 1
fi
echo "chaos smoke: kill -9 mid-solve, replay after restart, clean compaction all ok"

echo "== cluster smoke (coordinator + 2 replicas: stickiness, cache locality, failover, drain)"
# A 3-process local cluster: two backend-mode replicas and a coordinator
# consistent-hashing formulas across them. The same upload twice must
# route to the same replica (X-Backend equal) with the second answer a
# cache hit served through the proxy; killing that replica must reroute
# the third identical upload to the survivor (fresh miss, still UNSAT);
# SIGTERM must drain the whole topology with exit 0 everywhere.
"$SMOKE_DIR/neuroselect-serve" -addr 127.0.0.1:0 -workers 2 -backend-name r1 \
	> "$SMOKE_DIR/repl1.txt" 2>&1 &
R1_PID=$!
"$SMOKE_DIR/neuroselect-serve" -addr 127.0.0.1:0 -workers 2 -backend-name r2 \
	> "$SMOKE_DIR/repl2.txt" 2>&1 &
R2_PID=$!
api1=""
api2=""
i=0
while { [ -z "$api1" ] || [ -z "$api2" ]; } && [ "$i" -lt 100 ]; do
	api1="$(sed -n 's/^solving API listening on //p' "$SMOKE_DIR/repl1.txt" 2>/dev/null)"
	api2="$(sed -n 's/^solving API listening on //p' "$SMOKE_DIR/repl2.txt" 2>/dev/null)"
	{ [ -n "$api1" ] && [ -n "$api2" ]; } || sleep 0.1
	i=$((i + 1))
done
if [ -z "$api1" ] || [ -z "$api2" ]; then
	echo "cluster smoke: FAIL — replicas never announced their listen addresses"
	exit 1
fi
"$SMOKE_DIR/neuroselect-serve" -coordinator \
	-replicas "http://$api1,http://$api2" -addr 127.0.0.1:0 \
	-probe-interval 250ms -metrics-addr 127.0.0.1:0 \
	> "$SMOKE_DIR/coord.txt" 2>&1 &
COORD_PID=$!
capi=""
i=0
while [ -z "$capi" ] && [ "$i" -lt 100 ]; do
	capi="$(sed -n 's/^cluster coordinator listening on //p' "$SMOKE_DIR/coord.txt" 2>/dev/null |
		sed 's/ (.*//')"
	[ -n "$capi" ] || sleep 0.1
	i=$((i + 1))
done
if [ -z "$capi" ]; then
	echo "cluster smoke: FAIL — coordinator never announced its listen address"
	exit 1
fi
cmaddr="$(sed -n 's/^metrics listening on //p' "$SMOKE_DIR/coord.txt")"

# Same formula twice through the coordinator: sticky backend, cache hit.
curl -fsS -D "$SMOKE_DIR/ch1.txt" --data-binary @"$SMOKE_DIR/php8.cnf" \
	"http://$capi/v1/solve" > "$SMOKE_DIR/cr1.json"
curl -fsS -D "$SMOKE_DIR/ch2.txt" --data-binary @"$SMOKE_DIR/php8.cnf" \
	"http://$capi/v1/solve" > "$SMOKE_DIR/cr2.json"
be1="$(sed -n 's/^[Xx]-[Bb]ackend: *//p' "$SMOKE_DIR/ch1.txt" | tr -d '\r')"
be2="$(sed -n 's/^[Xx]-[Bb]ackend: *//p' "$SMOKE_DIR/ch2.txt" | tr -d '\r')"
if [ -z "$be1" ] || [ "$be1" != "$be2" ]; then
	echo "cluster smoke: FAIL — identical uploads routed to '$be1' then '$be2', want one sticky backend"
	exit 1
fi
grep -q '"status":"UNSAT"' "$SMOKE_DIR/cr1.json" || {
	echo "cluster smoke: FAIL — php-8 through the coordinator did not solve UNSAT"
	exit 1
}
grep -qi '^x-cache: hit' "$SMOKE_DIR/ch2.txt" || {
	echo "cluster smoke: FAIL — second identical upload was not a cache hit through the coordinator"
	exit 1
}
cmp -s "$SMOKE_DIR/cr1.json" "$SMOKE_DIR/cr2.json" || {
	echo "cluster smoke: FAIL — cache hit body differs from the original through the coordinator"
	exit 1
}

# Kill the owning replica (no drain — a crash): the next identical upload
# must fail over to the survivor and solve fresh.
case "$be1" in
r1) kill -9 "$R1_PID" && wait "$R1_PID" 2>/dev/null || true
	R1_PID="" ;;
r2) kill -9 "$R2_PID" && wait "$R2_PID" 2>/dev/null || true
	R2_PID="" ;;
*)
	echo "cluster smoke: FAIL — unexpected X-Backend '$be1'"
	exit 1
	;;
esac
curl -fsS -D "$SMOKE_DIR/ch3.txt" --data-binary @"$SMOKE_DIR/php8.cnf" \
	"http://$capi/v1/solve" > "$SMOKE_DIR/cr3.json"
be3="$(sed -n 's/^[Xx]-[Bb]ackend: *//p' "$SMOKE_DIR/ch3.txt" | tr -d '\r')"
if [ -z "$be3" ] || [ "$be3" = "$be1" ]; then
	echo "cluster smoke: FAIL — after killing $be1 the request still routed to '$be3'"
	exit 1
fi
grep -qi '^x-cache: miss' "$SMOKE_DIR/ch3.txt" || {
	echo "cluster smoke: FAIL — failover request was not a fresh miss on the survivor"
	exit 1
}
grep -q '"status":"UNSAT"' "$SMOKE_DIR/cr3.json" || {
	echo "cluster smoke: FAIL — failover solve did not answer UNSAT"
	exit 1
}

# Routing is observable on the coordinator's own metrics plane.
curl -fsS "http://$cmaddr/metrics" | awk '
	$1 ~ /^neuroselect_cluster_routed_total/ { sum += $2 }
	END { exit(sum > 0 ? 0 : 1) }' || {
	echo "cluster smoke: FAIL — neuroselect_cluster_routed_total never moved"
	exit 1
}

# SIGTERM drain of the whole topology: coordinator and survivor exit 0.
kill -TERM "$COORD_PID"
rc=0
wait "$COORD_PID" || rc=$?
COORD_PID=""
if [ "$rc" != 0 ]; then
	echo "cluster smoke: FAIL — coordinator exited $rc after drain"
	exit 1
fi
surv_pid="$R1_PID$R2_PID" # exactly one survivor remains
kill -TERM "$surv_pid"
rc=0
wait "$surv_pid" || rc=$?
R1_PID=""
R2_PID=""
if [ "$rc" != 0 ]; then
	echo "cluster smoke: FAIL — surviving replica exited $rc after drain"
	exit 1
fi
echo "cluster smoke: sticky routing, proxied cache hit, failover on crash, topology drain all ok"

echo "== benchmark regression gate (BENCH_solver.json delta)"
if [ "${BENCH_DELTA_SKIP:-0}" = 1 ]; then
	echo "bench delta gate: skipped (BENCH_DELTA_SKIP=1)"
else
	# Re-measure with the same benchtime and sample count the baseline was
	# recorded at — comparing across benchtimes mistakes amortization
	# effects for regressions, and both sides must use the same min-of-N
	# estimator (see bench.sh) for the ratios to mean anything.
	base_benchtime="$(sed -n 's/.*"benchtime": "\([^"]*\)".*/\1/p' BENCH_solver.json)"
	base_count="$(sed -n 's/.*"count": \([0-9]*\).*/\1/p' BENCH_solver.json)"
	BENCH_OUT="$SMOKE_DIR/bench_now.json" BENCH_COUNT="${base_count:-3}" \
		./scripts/bench.sh "${base_benchtime:-1s}" > /dev/null
	extract_bench() {
		sed -n 's/.*"name": "\([^"]*\)".*"ns_per_op": \([0-9.e+]*\).*/\1 \2/p' "$1"
	}
	extract_bench BENCH_solver.json > "$SMOKE_DIR/bench_base.txt"
	extract_bench "$SMOKE_DIR/bench_now.json" > "$SMOKE_DIR/bench_cur.txt"
	# Gate only benchmarks whose baseline is >= 100µs — below that, scheduler
	# noise swamps a 10% threshold. The Portfolio* family is recorded in
	# BENCH_solver.json for cross-PR trajectory but excluded from the gate:
	# those are whole-solve multi-worker wall-clock measurements, and the
	# free-running mode's time-to-answer depends on which diversified worker
	# the scheduler lets finish first — ±50% run-to-run swings are normal
	# and carry no regression signal. Ratios are normalized by the median ratio
	# across all gated benchmarks: when the whole machine is slower (the gate
	# runs right after the race suite and smokes), every benchmark shifts by
	# roughly the same factor and the median absorbs it, while a regression in
	# one code path still sticks out relative to the rest. A median ratio over
	# medcap is an across-the-board slowdown no load story explains, and fails
	# outright. BENCH_solver.json is the committed baseline; regenerate it with
	# ./scripts/bench.sh when a slowdown is intentional and explained.
	awk -v floor=100000 -v tol=1.10 -v medcap=1.50 '
		NR == FNR { base[$1] = $2; next }
		($1 in base) && base[$1] >= floor && $1 !~ /^Portfolio/ {
			gated++
			name[gated] = $1
			ratio[gated] = $2 / base[$1]
			cur[gated] = $2
		}
		END {
			if (gated == 0) { print "bench delta gate: no gated benchmarks matched the baseline"; exit 1 }
			for (i = 1; i <= gated; i++) sorted[i] = ratio[i]
			for (i = 2; i <= gated; i++)
				for (j = i; j > 1 && sorted[j-1] > sorted[j]; j--) {
					t = sorted[j]; sorted[j] = sorted[j-1]; sorted[j-1] = t
				}
			med = (gated % 2) ? sorted[(gated + 1) / 2] \
				: (sorted[gated / 2] + sorted[gated / 2 + 1]) / 2
			if (med > medcap) {
				printf "bench delta gate: FAIL — median slowdown +%.1f%% exceeds %.0f%% cap\n", \
					100 * (med - 1), 100 * (medcap - 1)
				fail = 1
			}
			norm = (med > 1) ? med : 1   # never relax the gate on a fast run
			for (i = 1; i <= gated; i++)
				if (ratio[i] > norm * tol) {
					printf "bench delta gate: FAIL — %s regressed %.0f -> %.0f ns/op (+%.1f%% vs +%.1f%% median)\n", \
						name[i], base[name[i]], cur[i], 100 * (ratio[i] - 1), 100 * (med - 1)
					fail = 1
				}
			if (fail) exit 1
			printf "bench delta gate: %d benchmarks within %.0f%% of baseline (median shift %+.1f%%)\n", \
				gated, 100 * (tol - 1), 100 * (med - 1)
		}' "$SMOKE_DIR/bench_base.txt" "$SMOKE_DIR/bench_cur.txt"
fi

echo "== coverage (experiments + sweep engine + portfolio)"
COVER_PROFILE="$(mktemp)"
go test -count=1 -covermode=atomic -coverprofile="$COVER_PROFILE" \
	./internal/experiments ./internal/sweep ./internal/metrics \
	./internal/portfolio

awk -F: -v efloor="$EXPERIMENTS_COVER_FLOOR" -v pfloor="$PORTFOLIO_COVER_FLOOR" '
	{
		# profile lines: path:start,end numStmts hitCount
		if ($1 ~ /^neuroselect\/internal\/experiments\//) {
			split($2, f, " ")
			etotal += f[2]
			if (f[3] > 0) ecovered += f[2]
		}
		if ($1 ~ /^neuroselect\/internal\/portfolio\//) {
			split($2, f, " ")
			ptotal += f[2]
			if (f[3] > 0) pcovered += f[2]
		}
	}
	END {
		if (etotal == 0) { print "coverage gate: no experiments statements in profile"; exit 1 }
		pct = 100 * ecovered / etotal
		printf "experiments statement coverage: %.1f%% (floor %.1f%%)\n", pct, efloor
		if (pct < efloor) { print "coverage gate: FAIL — experiments below floor"; exit 1 }
		if (ptotal == 0) { print "coverage gate: no portfolio statements in profile"; exit 1 }
		pct = 100 * pcovered / ptotal
		printf "portfolio statement coverage: %.1f%% (floor %.1f%%)\n", pct, pfloor
		if (pct < pfloor) { print "coverage gate: FAIL — portfolio below floor"; exit 1 }
	}' "$COVER_PROFILE"

echo "check: all gates passed"
