#!/bin/sh
# Tier-1 gate: build, vet, full test suite, the race detector on the
# concurrency-bearing packages (portfolio racing, the sweep engine, the
# experiments runner, solver cancellation, registry scrapes, the HTTP
# server), a live metrics-endpoint smoke test, an end-to-end smoke of the
# solving service (cache hit, queue shedding, SIGTERM drain), two
# documentation gates (package comments, README flag freshness), and a
# coverage gate on the experiments package. Run from the repo root via
# `make check` or `./scripts/check.sh`.
set -eu

# Statement-coverage floor for neuroselect/internal/experiments. The
# pre-sweep-engine suite sat below this; the sweep engine's determinism,
# fault-injection, and sharding paths pushed it past 90%, and this gate
# keeps future changes from silently shedding that coverage.
EXPERIMENTS_COVER_FLOOR=85.0

COVER_PROFILE=""
SMOKE_DIR=""
SMOKE_PID=""
SERVE_PID=""
cleanup() {
	if [ -n "$SMOKE_PID" ]; then
		kill "$SMOKE_PID" 2>/dev/null || true
	fi
	if [ -n "$SERVE_PID" ]; then
		kill -9 "$SERVE_PID" 2>/dev/null || true
	fi
	if [ -n "$SMOKE_DIR" ]; then
		rm -rf "$SMOKE_DIR"
	fi
	if [ -n "$COVER_PROFILE" ]; then
		rm -f "$COVER_PROFILE"
	fi
}
trap cleanup EXIT

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (concurrency-bearing packages)"
go test -race ./internal/experiments ./internal/portfolio \
	./internal/sweep ./internal/metrics ./internal/dataset \
	./internal/solver ./internal/faultpoint ./internal/obs \
	./internal/server

echo "== benchmark smoke (1 iteration per benchmark)"
go test -run '^$' -bench . -benchtime 1x ./internal/solver ./internal/drat > /dev/null

echo "== metrics endpoint smoke (satsolve -metrics-addr)"
SMOKE_DIR="$(mktemp -d)"
go build -o "$SMOKE_DIR/satsolve" ./cmd/satsolve
go run ./cmd/satgen -family pigeonhole -n 9 > "$SMOKE_DIR/php9.cnf"
# A hard pigeonhole instance keeps the solver generating conflicts while we
# scrape; the timeout is a backstop — the smoke kills the solve once the
# counters have been observed moving.
"$SMOKE_DIR/satsolve" -metrics-addr 127.0.0.1:0 -model=false -timeout 120s \
	"$SMOKE_DIR/php9.cnf" > "$SMOKE_DIR/out.txt" &
SMOKE_PID=$!

addr=""
i=0
while [ -z "$addr" ] && [ "$i" -lt 100 ]; do
	addr="$(sed -n 's/^c metrics listening on //p' "$SMOKE_DIR/out.txt" 2>/dev/null)"
	if [ -z "$addr" ]; then
		sleep 0.1
	fi
	i=$((i + 1))
done
if [ -z "$addr" ]; then
	echo "metrics smoke: FAIL — satsolve never announced its listen address"
	exit 1
fi

curl -fsS "http://$addr/healthz" | grep -qx ok || {
	echo "metrics smoke: FAIL — /healthz did not answer ok"
	exit 1
}

ok=0
i=0
while [ "$i" -lt 100 ]; do
	if curl -fsS "http://$addr/metrics" 2>/dev/null | awk '
		$1 == "neuroselect_solver_conflicts_total" && $2 + 0 > 0 { found = 1 }
		END { exit(found ? 0 : 1) }'; then
		ok=1
		break
	fi
	sleep 0.1
	i=$((i + 1))
done
if [ "$ok" != 1 ]; then
	echo "metrics smoke: FAIL — /metrics conflicts counter never became nonzero"
	exit 1
fi
kill "$SMOKE_PID" 2>/dev/null || true
wait "$SMOKE_PID" 2>/dev/null || true
SMOKE_PID=""
echo "metrics smoke: /healthz ok, solver counters live at http://$addr/metrics"

echo "== package-doc gate (every package states its role)"
fail=0
for d in . internal/* cmd/*; do
	ls "$d"/*.go >/dev/null 2>&1 || continue
	if ! grep -q -E '^// (Package|Command) ' "$d"/*.go; then
		echo "package-doc gate: FAIL — $d has no package comment"
		fail=1
	fi
done
if [ "$fail" != 0 ]; then
	exit 1
fi
echo "package-doc gate: all packages documented"

echo "== docs-freshness gate (every cmd/* flag appears in README's flag tables)"
fail=0
for f in cmd/*/main.go; do
	cmdname="$(basename "$(dirname "$f")")"
	# Top-level flags only: subcommand FlagSets (fs.String) document
	# themselves via their own -h and are out of the README tables' scope.
	flags="$(grep -oE 'flag\.(String|Bool|Int64|Int|Duration|Float64)\("[a-z][a-z0-9-]*"' "$f" |
		cut -d'"' -f2 | sort -u)"
	for fl in $flags; do
		if ! grep -q -- "\`-$fl\`" README.md; then
			echo "docs gate: FAIL — flag -$fl of cmd/$cmdname is not documented in README.md"
			fail=1
		fi
	done
done
if [ "$fail" != 0 ]; then
	exit 1
fi
echo "docs gate: every cmd flag documented"

echo "== solving-service smoke (neuroselect-serve end to end)"
if [ -z "$SMOKE_DIR" ]; then
	SMOKE_DIR="$(mktemp -d)"
fi
go build -o "$SMOKE_DIR/neuroselect-serve" ./cmd/neuroselect-serve
go run ./cmd/satgen -family pigeonhole -n 7 > "$SMOKE_DIR/php7.cnf"
go run ./cmd/satgen -family pigeonhole -n 8 > "$SMOKE_DIR/php8.cnf"
go run ./cmd/satgen -family pigeonhole -n 12 > "$SMOKE_DIR/php12.cnf"
"$SMOKE_DIR/neuroselect-serve" -addr 127.0.0.1:0 -workers 2 -queue 1 \
	-metrics-addr 127.0.0.1:0 > "$SMOKE_DIR/serve.txt" 2>&1 &
SERVE_PID=$!

api=""
i=0
while [ -z "$api" ] && [ "$i" -lt 100 ]; do
	api="$(sed -n 's/^solving API listening on //p' "$SMOKE_DIR/serve.txt" 2>/dev/null)"
	[ -n "$api" ] || sleep 0.1
	i=$((i + 1))
done
if [ -z "$api" ]; then
	echo "serve smoke: FAIL — server never announced its listen address"
	exit 1
fi
maddr="$(sed -n 's/^metrics listening on //p' "$SMOKE_DIR/serve.txt")"

# Concurrent solves: two clients at once, both must decide php-8 UNSAT.
curl -fsS --data-binary @"$SMOKE_DIR/php8.cnf" "http://$api/v1/solve" \
	> "$SMOKE_DIR/r1.json" &
c1=$!
curl -fsS --data-binary @"$SMOKE_DIR/php8.cnf" "http://$api/v1/solve?policy=frequency" \
	> "$SMOKE_DIR/r2.json" &
c2=$!
wait "$c1" "$c2"
grep -q '"status":"UNSAT"' "$SMOKE_DIR/r1.json" || {
	echo "serve smoke: FAIL — php-8 did not solve UNSAT: $(cat "$SMOKE_DIR/r1.json")"
	exit 1
}
grep -q '"status":"UNSAT"' "$SMOKE_DIR/r2.json" || {
	echo "serve smoke: FAIL — php-8 under ?policy=frequency did not solve UNSAT"
	exit 1
}

# Duplicate upload: identical body served from the cache with X-Cache: hit.
curl -fsS -D "$SMOKE_DIR/hdr.txt" --data-binary @"$SMOKE_DIR/php8.cnf" \
	"http://$api/v1/solve" > "$SMOKE_DIR/r3.json"
grep -qi '^x-cache: hit' "$SMOKE_DIR/hdr.txt" || {
	echo "serve smoke: FAIL — duplicate instance was not served from the cache"
	exit 1
}
cmp -s "$SMOKE_DIR/r1.json" "$SMOKE_DIR/r3.json" || {
	echo "serve smoke: FAIL — cache hit body differs from the original response"
	exit 1
}

# Queue overflow: flood 2 workers + 1 queue slot with hard jobs until the
# admission queue sheds a request with 429.
shed=""
i=0
while [ -z "$shed" ] && [ "$i" -lt 8 ]; do
	code="$(curl -s -o /dev/null -w '%{http_code}' \
		--data-binary @"$SMOKE_DIR/php12.cnf" "http://$api/v1/jobs?timeout=5s")"
	if [ "$code" = 429 ]; then
		shed=yes
	fi
	i=$((i + 1))
done
if [ -z "$shed" ]; then
	echo "serve smoke: FAIL — queue overflow never returned 429"
	exit 1
fi

# The request counter on /metrics moved.
curl -fsS "http://$maddr/metrics" | awk '
	$1 ~ /^neuroselect_server_requests_total/ { sum += $2 }
	END { exit(sum > 0 ? 0 : 1) }' || {
	echo "serve smoke: FAIL — neuroselect_server_requests_total never moved"
	exit 1
}

# SIGTERM drains: an in-flight job finishes with a result, then the
# process exits 0 on its own. The flood above left the pool saturated,
# so retry the submit until the 5s-bounded php-12 jobs free a slot.
jid=""
i=0
while [ -z "$jid" ] && [ "$i" -lt 300 ]; do
	jid="$(curl -s --data-binary @"$SMOKE_DIR/php7.cnf" \
		"http://$api/v1/jobs?policy=size" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
	[ -n "$jid" ] || sleep 0.1
	i=$((i + 1))
done
if [ -z "$jid" ]; then
	echo "serve smoke: FAIL — async submit never admitted after the flood"
	exit 1
fi
kill -TERM "$SERVE_PID"
done_status=""
i=0
while [ -z "$done_status" ] && [ "$i" -lt 200 ]; do
	poll="$(curl -s "http://$api/v1/jobs/$jid" 2>/dev/null || true)"
	case "$poll" in
	*'"status":"done"'*) done_status="$poll" ;;
	*) sleep 0.1 ;;
	esac
	i=$((i + 1))
done
case "$done_status" in
*'"status":"UNSAT"'*) : ;;
*)
	echo "serve smoke: FAIL — in-flight job dropped during drain: $done_status"
	exit 1
	;;
esac
rc=0
wait "$SERVE_PID" || rc=$?
SERVE_PID=""
if [ "$rc" != 0 ]; then
	echo "serve smoke: FAIL — server exited $rc after drain"
	exit 1
fi
echo "serve smoke: concurrent solves, cache hit, 429 shedding, SIGTERM drain all ok"

echo "== coverage (experiments + sweep engine)"
COVER_PROFILE="$(mktemp)"
go test -count=1 -covermode=atomic -coverprofile="$COVER_PROFILE" \
	./internal/experiments ./internal/sweep ./internal/metrics

awk -F: -v floor="$EXPERIMENTS_COVER_FLOOR" '
	{
		# profile lines: path:start,end numStmts hitCount
		if ($1 ~ /^neuroselect\/internal\/experiments\//) {
			split($2, f, " ")
			total += f[2]
			if (f[3] > 0) covered += f[2]
		}
	}
	END {
		if (total == 0) { print "coverage gate: no experiments statements in profile"; exit 1 }
		pct = 100 * covered / total
		printf "experiments statement coverage: %.1f%% (floor %.1f%%)\n", pct, floor
		if (pct < floor) { print "coverage gate: FAIL — below floor"; exit 1 }
	}' "$COVER_PROFILE"

echo "check: all gates passed"
