#!/bin/sh
# Tier-1 gate: build, vet, full test suite, the race detector on the
# concurrency-bearing packages (portfolio racing, the sweep engine, the
# experiments runner, solver cancellation, registry scrapes), a live
# metrics-endpoint smoke test, and a coverage gate on the experiments
# package. Run from the repo root via `make check` or `./scripts/check.sh`.
set -eu

# Statement-coverage floor for neuroselect/internal/experiments. The
# pre-sweep-engine suite sat below this; the sweep engine's determinism,
# fault-injection, and sharding paths pushed it past 90%, and this gate
# keeps future changes from silently shedding that coverage.
EXPERIMENTS_COVER_FLOOR=85.0

COVER_PROFILE=""
SMOKE_DIR=""
SMOKE_PID=""
cleanup() {
	if [ -n "$SMOKE_PID" ]; then
		kill "$SMOKE_PID" 2>/dev/null || true
	fi
	if [ -n "$SMOKE_DIR" ]; then
		rm -rf "$SMOKE_DIR"
	fi
	if [ -n "$COVER_PROFILE" ]; then
		rm -f "$COVER_PROFILE"
	fi
}
trap cleanup EXIT

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (concurrency-bearing packages)"
go test -race ./internal/experiments ./internal/portfolio \
	./internal/sweep ./internal/metrics ./internal/dataset \
	./internal/solver ./internal/faultpoint ./internal/obs

echo "== benchmark smoke (1 iteration per benchmark)"
go test -run '^$' -bench . -benchtime 1x ./internal/solver ./internal/drat > /dev/null

echo "== metrics endpoint smoke (satsolve -metrics-addr)"
SMOKE_DIR="$(mktemp -d)"
go build -o "$SMOKE_DIR/satsolve" ./cmd/satsolve
go run ./cmd/satgen -family pigeonhole -n 9 > "$SMOKE_DIR/php9.cnf"
# A hard pigeonhole instance keeps the solver generating conflicts while we
# scrape; the timeout is a backstop — the smoke kills the solve once the
# counters have been observed moving.
"$SMOKE_DIR/satsolve" -metrics-addr 127.0.0.1:0 -model=false -timeout 120s \
	"$SMOKE_DIR/php9.cnf" > "$SMOKE_DIR/out.txt" &
SMOKE_PID=$!

addr=""
i=0
while [ -z "$addr" ] && [ "$i" -lt 100 ]; do
	addr="$(sed -n 's/^c metrics listening on //p' "$SMOKE_DIR/out.txt" 2>/dev/null)"
	if [ -z "$addr" ]; then
		sleep 0.1
	fi
	i=$((i + 1))
done
if [ -z "$addr" ]; then
	echo "metrics smoke: FAIL — satsolve never announced its listen address"
	exit 1
fi

curl -fsS "http://$addr/healthz" | grep -qx ok || {
	echo "metrics smoke: FAIL — /healthz did not answer ok"
	exit 1
}

ok=0
i=0
while [ "$i" -lt 100 ]; do
	if curl -fsS "http://$addr/metrics" 2>/dev/null | awk '
		$1 == "neuroselect_solver_conflicts_total" && $2 + 0 > 0 { found = 1 }
		END { exit(found ? 0 : 1) }'; then
		ok=1
		break
	fi
	sleep 0.1
	i=$((i + 1))
done
if [ "$ok" != 1 ]; then
	echo "metrics smoke: FAIL — /metrics conflicts counter never became nonzero"
	exit 1
fi
kill "$SMOKE_PID" 2>/dev/null || true
wait "$SMOKE_PID" 2>/dev/null || true
SMOKE_PID=""
echo "metrics smoke: /healthz ok, solver counters live at http://$addr/metrics"

echo "== coverage (experiments + sweep engine)"
COVER_PROFILE="$(mktemp)"
go test -count=1 -covermode=atomic -coverprofile="$COVER_PROFILE" \
	./internal/experiments ./internal/sweep ./internal/metrics

awk -F: -v floor="$EXPERIMENTS_COVER_FLOOR" '
	{
		# profile lines: path:start,end numStmts hitCount
		if ($1 ~ /^neuroselect\/internal\/experiments\//) {
			split($2, f, " ")
			total += f[2]
			if (f[3] > 0) covered += f[2]
		}
	}
	END {
		if (total == 0) { print "coverage gate: no experiments statements in profile"; exit 1 }
		pct = 100 * covered / total
		printf "experiments statement coverage: %.1f%% (floor %.1f%%)\n", pct, floor
		if (pct < floor) { print "coverage gate: FAIL — below floor"; exit 1 }
	}' "$COVER_PROFILE"

echo "check: all gates passed"
