# Tier-1 verification gate and common developer targets.

GO ?= go

.PHONY: check build vet test race cover bench

## check: the tier-1 gate — build, vet, all tests, race detector on the
## concurrency-bearing packages, and the experiments coverage floor. CI and
## pre-merge both run this.
check:
	./scripts/check.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/experiments ./internal/portfolio ./internal/sweep ./internal/metrics ./internal/dataset ./internal/solver ./internal/faultpoint ./internal/obs ./internal/server ./internal/cluster

## cover: per-package coverage summary for the sweep/experiments stack.
cover:
	$(GO) test -count=1 -covermode=atomic -cover ./internal/experiments ./internal/sweep ./internal/metrics ./internal/dataset

## bench: run the solver + DRAT benchmark suites and write the
## machine-readable BENCH_solver.json trajectory file. Pass a custom
## -benchtime via BENCHTIME (e.g. `make bench BENCHTIME=3s`).
BENCHTIME ?= 1s
bench:
	./scripts/bench.sh $(BENCHTIME)
