# Tier-1 verification gate and common developer targets.

GO ?= go

.PHONY: check build vet test race

## check: the tier-1 gate — build, vet, all tests, race detector on the
## concurrency-bearing packages. CI and pre-merge both run this.
check:
	./scripts/check.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/portfolio/... ./internal/experiments/... ./internal/solver/... ./internal/faultpoint/...
