# Tier-1 verification gate and common developer targets.

GO ?= go

.PHONY: check build vet test race cover

## check: the tier-1 gate — build, vet, all tests, race detector on the
## concurrency-bearing packages, and the experiments coverage floor. CI and
## pre-merge both run this.
check:
	./scripts/check.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/experiments ./internal/portfolio ./internal/sweep ./internal/metrics ./internal/dataset ./internal/solver ./internal/faultpoint

## cover: per-package coverage summary for the sweep/experiments stack.
cover:
	$(GO) test -count=1 -covermode=atomic -cover ./internal/experiments ./internal/sweep ./internal/metrics ./internal/dataset
