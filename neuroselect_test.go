package neuroselect_test

import (
	"strings"
	"testing"

	"neuroselect"
)

func TestFacadeSolve(t *testing.T) {
	f := neuroselect.NewFormula(3)
	f.MustAddClause(1, 2)
	f.MustAddClause(-1, 3)
	f.MustAddClause(-2, -3)
	res, err := neuroselect.Solve(f, neuroselect.SolveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != neuroselect.Sat {
		t.Fatalf("status %v", res.Status)
	}
	if !res.Model.Satisfies(f) {
		t.Fatal("model must satisfy")
	}
}

func TestFacadePolicies(t *testing.T) {
	f, err := neuroselect.ParseDIMACS(strings.NewReader("p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []string{"", "default", "frequency", "activity", "size"} {
		res, err := neuroselect.Solve(f, neuroselect.SolveConfig{Policy: pol})
		if err != nil {
			t.Fatalf("%q: %v", pol, err)
		}
		if res.Status != neuroselect.Unsat {
			t.Fatalf("%q: %v", pol, res.Status)
		}
	}
	if _, err := neuroselect.Solve(f, neuroselect.SolveConfig{Policy: "bogus"}); err == nil {
		t.Fatal("unknown policy must error")
	}
}

func TestFacadeSolveAssuming(t *testing.T) {
	f := neuroselect.NewFormula(2)
	f.MustAddClause(1, 2)
	res, err := neuroselect.SolveAssuming(f, []neuroselect.Lit{-1}, neuroselect.SolveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != neuroselect.Sat || !res.Model[2] {
		t.Fatalf("assumption solve: %v %v", res.Status, res.Model)
	}
}

func TestFacadeDIMACSRoundTrip(t *testing.T) {
	f := neuroselect.NewFormula(2)
	f.MustAddClause(1, -2)
	var sb strings.Builder
	if err := neuroselect.WriteDIMACS(&sb, f); err != nil {
		t.Fatal(err)
	}
	g, err := neuroselect.ParseDIMACS(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != 2 || len(g.Clauses) != 1 {
		t.Fatal("round trip")
	}
}

// TestFacadeEndToEnd exercises train → predict → adaptive solve at the
// smallest scale.
func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	m, err := neuroselect.TrainSelector(neuroselect.TrainerConfig{Scale: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	f := neuroselect.NewFormula(3)
	f.MustAddClause(1, 2, 3)
	f.MustAddClause(-1, -2)
	prob, policy := neuroselect.PredictPolicy(f, m)
	if prob < 0 || prob > 1 {
		t.Fatalf("prob %v", prob)
	}
	if policy != "default" && policy != "frequency" {
		t.Fatalf("policy %q", policy)
	}
	res, err := neuroselect.SolveAdaptive(f, m, neuroselect.SolveConfig{MaxConflicts: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != neuroselect.Sat {
		t.Fatalf("adaptive solve: %v", res.Status)
	}
}

func TestFacadePreprocessSolve(t *testing.T) {
	f := neuroselect.NewFormula(4)
	f.MustAddClause(1)
	f.MustAddClause(-1, 2)
	f.MustAddClause(-2, 3, 4)
	res, err := neuroselect.Solve(f, neuroselect.SolveConfig{Preprocess: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != neuroselect.Sat || !res.Model.Satisfies(f) {
		t.Fatalf("preprocessed solve: %v", res.Status)
	}
	g, units, unsat := neuroselect.Preprocess(f)
	if unsat {
		t.Fatal("satisfiable formula refuted")
	}
	if len(units) < 2 {
		t.Fatalf("expected propagated units, got %v", units)
	}
	if len(g.Clauses) >= len(f.Clauses) {
		t.Fatal("preprocessing should shrink this formula")
	}
}

func TestFacadeProofRoundTrip(t *testing.T) {
	f, err := neuroselect.ParseDIMACS(strings.NewReader("p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	var proof strings.Builder
	w := neuroselect.NewProofWriter(&proof)
	res, err := neuroselect.Solve(f, neuroselect.SolveConfig{Proof: w})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != neuroselect.Unsat {
		t.Fatalf("status %v", res.Status)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := neuroselect.CheckProof(f, strings.NewReader(proof.String())); err != nil {
		t.Fatalf("proof rejected: %v", err)
	}
}

func TestFacadeProofPreprocessConflict(t *testing.T) {
	f := neuroselect.NewFormula(1)
	f.MustAddClause(1)
	var sb strings.Builder
	_, err := neuroselect.Solve(f, neuroselect.SolveConfig{
		Preprocess: true,
		Proof:      neuroselect.NewProofWriter(&sb),
	})
	if err == nil {
		t.Fatal("Proof+Preprocess must be rejected")
	}
}

func TestFacadeModelSaveLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	m, err := neuroselect.TrainSelector(neuroselect.TrainerConfig{Scale: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := neuroselect.SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := neuroselect.LoadModel(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	f := neuroselect.NewFormula(3)
	f.MustAddClause(1, 2, 3)
	if loaded.Predict(f) != m.Predict(f) {
		t.Fatal("loaded model predicts differently")
	}
}
