module neuroselect

go 1.22
