package neuroselect_test

import (
	"fmt"
	"strings"

	"neuroselect"
)

// ExampleSolve demonstrates programmatic formula construction and solving.
func ExampleSolve() {
	f := neuroselect.NewFormula(2)
	f.MustAddClause(1, 2) // x1 ∨ x2
	f.MustAddClause(-1)   // ¬x1
	res, err := neuroselect.Solve(f, neuroselect.SolveConfig{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Status)
	fmt.Println("x2 =", res.Model[2])
	// Output:
	// SAT
	// x2 = true
}

// ExampleSolve_frequencyPolicy selects the paper's propagation-frequency
// deletion policy explicitly.
func ExampleSolve_frequencyPolicy() {
	f, _ := neuroselect.ParseDIMACS(strings.NewReader(
		"p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n"))
	res, err := neuroselect.Solve(f, neuroselect.SolveConfig{Policy: "frequency"})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Status)
	// Output:
	// UNSAT
}

// ExampleCheckProof certifies an UNSAT answer with a DRAT proof verified by
// the independent checker.
func ExampleCheckProof() {
	f, _ := neuroselect.ParseDIMACS(strings.NewReader(
		"p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n"))
	var proof strings.Builder
	w := neuroselect.NewProofWriter(&proof)
	res, _ := neuroselect.Solve(f, neuroselect.SolveConfig{Proof: w})
	_ = w.Flush()
	fmt.Println(res.Status)
	fmt.Println("proof accepted:", neuroselect.CheckProof(f, strings.NewReader(proof.String())) == nil)
	// Output:
	// UNSAT
	// proof accepted: true
}

// ExamplePreprocess shows SatELite-style simplification with model
// reconstruction data.
func ExamplePreprocess() {
	f := neuroselect.NewFormula(3)
	f.MustAddClause(1)     // unit
	f.MustAddClause(-1, 2) // propagates x2
	f.MustAddClause(-2, 3) // propagates x3
	g, units, unsat := neuroselect.Preprocess(f)
	fmt.Println("unsat:", unsat)
	fmt.Println("residual clauses:", len(g.Clauses))
	fmt.Println("fixed literals:", len(units))
	// Output:
	// unsat: false
	// residual clauses: 0
	// fixed literals: 3
}

// ExampleSolveAssuming answers an incremental-style query.
func ExampleSolveAssuming() {
	f := neuroselect.NewFormula(2)
	f.MustAddClause(1, 2)
	res, _ := neuroselect.SolveAssuming(f, []neuroselect.Lit{-1}, neuroselect.SolveConfig{})
	fmt.Println(res.Status, res.Model[2])
	// Output:
	// SAT true
}
