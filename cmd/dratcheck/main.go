// Command dratcheck validates a DRAT unsatisfiability proof against a
// DIMACS formula, independently of the solver that produced it.
//
// Usage:
//
//	dratcheck formula.cnf proof.drat
//
// Exits 0 when the proof is accepted, 1 when rejected or malformed.
package main

import (
	"flag"
	"fmt"
	"os"

	"neuroselect/internal/cnf"
	"neuroselect/internal/drat"
)

func main() {
	verbose := flag.Bool("v", false, "print proof statistics")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: dratcheck [-v] formula.cnf proof.drat")
		os.Exit(2)
	}
	ff, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer ff.Close()
	f, err := cnf.ParseDIMACS(ff)
	if err != nil {
		fatal(err)
	}
	pf, err := os.Open(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	defer pf.Close()
	steps, err := drat.Parse(pf)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		st := drat.Summarize(steps)
		fmt.Printf("c proof: %d additions, %d deletions, max clause length %d\n",
			st.Additions, st.Deletions, st.MaxLen)
	}
	if err := drat.Check(f, steps); err != nil {
		fmt.Fprintln(os.Stderr, "s PROOF REJECTED:", err)
		os.Exit(1)
	}
	fmt.Println("s VERIFIED")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dratcheck:", err)
	os.Exit(1)
}
