// Command neuroselect trains the clause-deletion policy selector and
// applies it to DIMACS instances.
//
// Usage:
//
//	neuroselect train -out model.json [-scale quick|default]
//	neuroselect predict -model model.json file.cnf
//	neuroselect solve -model model.json [-conflicts N] file.cnf
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"neuroselect"
	"neuroselect/internal/dataset"
	"neuroselect/internal/metrics"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "train":
		cmdTrain(os.Args[2:])
	case "predict":
		cmdPredict(os.Args[2:])
	case "solve":
		cmdSolve(os.Args[2:])
	case "eval":
		cmdEval(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: neuroselect {train|predict|solve|eval} [flags] [file.cnf]")
	os.Exit(2)
}

// cmdEval scores a trained model on a freshly generated labeled stratum,
// printing the Table 2 metrics.
func cmdEval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "trained model file")
	size := fs.Int("n", 20, "number of evaluation instances")
	seed := fs.Int64("seed", 20240623, "generation seed (distinct from training seeds)")
	budget := fs.Int64("conflicts", 40000, "labeling conflict budget")
	_ = fs.Parse(args)
	m, err := loadModel(*modelPath)
	if err != nil {
		fatal(err)
	}
	var cm metrics.Confusion
	for i := 0; i < *size; i++ {
		inst := dataset.Generate(*seed+int64(i)*13, 1.0)
		lab, err := dataset.Label(inst, *budget)
		if err != nil {
			fatal(err)
		}
		prob := m.Predict(inst.F)
		cm.Add(prob >= 0.5, lab.Label == 1)
		fmt.Printf("%-36s label=%d p=%.3f\n", inst.Name, lab.Label, prob)
	}
	fmt.Println(cm)
}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	out := fs.String("out", "model.json", "output model file")
	scale := fs.String("scale", "quick", "training scale: quick or default")
	_ = fs.Parse(args)

	m, err := neuroselect.TrainSelector(neuroselect.TrainerConfig{Scale: *scale, Log: os.Stderr})
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := neuroselect.SaveModel(f, m); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "model written to %s\n", *out)
}

// loadModel restores a self-describing model file written by "train".
func loadModel(path string) (*neuroselect.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return neuroselect.LoadModel(f)
}

func readFormula(fs *flag.FlagSet) *neuroselect.Formula {
	var in io.Reader = os.Stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	f, err := neuroselect.ParseDIMACS(in)
	if err != nil {
		fatal(err)
	}
	return f
}

func cmdPredict(args []string) {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "trained model file")
	_ = fs.Parse(args)
	m, err := loadModel(*modelPath)
	if err != nil {
		fatal(err)
	}
	f := readFormula(fs)
	prob, policy := neuroselect.PredictPolicy(f, m)
	fmt.Printf("p(frequency wins) = %.4f -> policy %q\n", prob, policy)
}

func cmdSolve(args []string) {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "trained model file")
	conflicts := fs.Int64("conflicts", 0, "conflict budget (0 = unlimited)")
	_ = fs.Parse(args)
	m, err := loadModel(*modelPath)
	if err != nil {
		fatal(err)
	}
	f := readFormula(fs)
	res, err := neuroselect.SolveAdaptive(f, m, neuroselect.SolveConfig{MaxConflicts: *conflicts})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("s %v\n", res.Status)
	fmt.Printf("c propagations=%d conflicts=%d\n", res.Stats.Propagations, res.Stats.Conflicts)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neuroselect:", err)
	os.Exit(1)
}
