// Command experiments reproduces the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale quick|default] [-only fig3|fig4|fig5|table1|table2|fig7|table3] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"neuroselect/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "default", "experiment scale: quick or default")
	only := flag.String("only", "", "run a single experiment (fig3, fig4, fig5, table1, table2, fig7, table3, ext-policies, ext-selectors, ext-alpha)")
	seed := flag.Int64("seed", 0, "override the corpus seed (0 keeps the preset)")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	jsonOut := flag.Bool("json", false, "emit one machine-readable JSON document instead of text reports")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "default":
		scale = experiments.DefaultScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *seed != 0 {
		scale.Corpus.Seed = *seed
	}
	r := experiments.NewRunner(scale)
	if !*quiet {
		r.Log = os.Stderr
	}
	if *jsonOut {
		if *only != "" {
			fmt.Fprintln(os.Stderr, "-json runs all experiments; -only is ignored")
		}
		if err := r.RunAllJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := r.RunAll(os.Stdout, *only); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
