// Command experiments reproduces the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale quick|default] [-only fig3|fig4|fig5|table1|table2|fig7|table3]
//	            [-seed N] [-j N] [-cell-timeout D] [-sweep-deadline D] [-deterministic]
//
// The instance×policy matrix of every experiment is sharded across -j
// workers; aggregation is deterministic, so the rendered tables and JSON
// are identical for any worker count. Ctrl-C (SIGINT/SIGTERM) cancels the
// parent context, draining all in-flight sweep workers before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"neuroselect/internal/experiments"
	"neuroselect/internal/obs"
)

func main() {
	scaleName := flag.String("scale", "default", "experiment scale: quick or default")
	only := flag.String("only", "", "run a single experiment (fig3, fig4, fig5, table1, table2, fig7, table3, ext-policies, ext-selectors, ext-alpha, ext-scaling)")
	seed := flag.Int64("seed", 0, "override the corpus seed (0 keeps the preset)")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	jsonOut := flag.Bool("json", false, "emit one machine-readable JSON document instead of text reports")
	workers := flag.Int("j", 0, "sweep worker count (0 = GOMAXPROCS)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell solve deadline (0 = none)")
	sweepDeadline := flag.Duration("sweep-deadline", 0, "whole-run deadline (0 = none)")
	deterministic := flag.Bool("deterministic", false, "replace wall-clock readings with propagation-derived pseudo-time so output is byte-identical across runs and worker counts")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /healthz and /debug/pprof for the sweep on this address (e.g. 127.0.0.1:9090)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // flush unreachable allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "default":
		scale = experiments.DefaultScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *seed != 0 {
		scale.Corpus.Seed = *seed
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *sweepDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *sweepDeadline)
		defer cancel()
	}

	r := experiments.NewRunner(scale)
	r.BaseContext = ctx
	r.Workers = *workers
	r.CellTimeout = *cellTimeout
	r.Deterministic = *deterministic
	if !*quiet {
		r.Log = os.Stderr
	}
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterProcessMetrics(reg, time.Now())
		obs.RegisterSweepCounters(reg, &r.Sweep)
		srv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "experiments: metrics listening on %s\n", srv.Addr())
		r.Obs = reg
	}
	start := time.Now()
	var err error
	if *jsonOut {
		if *only != "" {
			fmt.Fprintln(os.Stderr, "-json runs all experiments; -only is ignored")
		}
		err = r.RunAllJSON(os.Stdout)
	} else {
		err = r.RunAll(os.Stdout, *only)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "experiments: done in %s (workers=%d)\n", time.Since(start).Round(time.Millisecond), r.Sweep.NumWorkers())
	}
}
