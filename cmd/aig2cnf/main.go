// Command aig2cnf converts combinational ASCII AIGER circuits to DIMACS
// CNF, optionally building an equivalence-checking miter against a second
// circuit.
//
// Usage:
//
//	aig2cnf circuit.aag > circuit.cnf              # outputs unconstrained
//	aig2cnf -assert circuit.aag > sat.cnf          # outputs asserted true
//	aig2cnf -miter other.aag circuit.aag > cec.cnf # UNSAT iff equivalent
package main

import (
	"flag"
	"fmt"
	"os"

	"neuroselect/internal/aiger"
	"neuroselect/internal/cnf"
)

func main() {
	miterPath := flag.String("miter", "", "second AIGER file: emit the equivalence miter")
	assert := flag.Bool("assert", false, "assert every output true (without -miter)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: aig2cnf [-miter other.aag] [-assert] circuit.aag")
		os.Exit(2)
	}
	g := parseFile(flag.Arg(0))

	var f *cnf.Formula
	var comments []string
	if *miterPath != "" {
		h := parseFile(*miterPath)
		m, err := aiger.Miter(g, h)
		if err != nil {
			fatal(err)
		}
		f = m
		comments = []string{
			fmt.Sprintf("equivalence miter of %s and %s", flag.Arg(0), *miterPath),
			"UNSAT iff the circuits are equivalent",
		}
	} else {
		formula, outs, err := g.ToCNF()
		if err != nil {
			fatal(err)
		}
		if *assert {
			for _, o := range outs {
				formula.MustAddClause(o)
			}
		}
		f = formula
		comments = []string{fmt.Sprintf("Tseitin encoding of %s", flag.Arg(0))}
		for i, o := range outs {
			comments = append(comments, fmt.Sprintf("output %d is literal %d", i, o))
		}
	}
	if err := cnf.WriteDIMACS(os.Stdout, f, comments...); err != nil {
		fatal(err)
	}
}

func parseFile(path string) *aiger.AIG {
	fh, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer fh.Close()
	g, err := aiger.Parse(fh)
	if err != nil {
		fatal(err)
	}
	return g
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aig2cnf:", err)
	os.Exit(1)
}
