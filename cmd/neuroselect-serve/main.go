// Command neuroselect-serve runs the solver as an HTTP service.
//
// Usage:
//
//	neuroselect-serve [-addr :8080] [-workers N] [-queue N] [-max-timeout D]
//	                  [-cache-size N] [-max-body BYTES] [-model model.json]
//	                  [-metrics-addr HOST:PORT] [-drain-timeout D]
//	                  [-journal DIR] [-max-retries N] [-retry-base D]
//	                  [-breaker-threshold N] [-breaker-cooldown D]
//	                  [-breaker-max-latency D] [-session-max N]
//	                  [-session-ttl D] [-session-max-mem BYTES]
//	                  [-log-format off|text|json] [-sse-heartbeat D]
//	                  [-event-ring N] [-event-queue N]
//	                  [-backend-name NAME]
//	neuroselect-serve -coordinator -replicas URL,URL,... [-addr :8080]
//	                  [-probe-interval D] [-probe-timeout D]
//	                  [-fail-threshold N] [-metrics-addr HOST:PORT]
//	                  [-max-body BYTES] [-drain-timeout D]
//
// Endpoints (full contract in API.md):
//
//	POST   /v1/solve               DIMACS CNF body (raw or gzip) → solve result JSON
//	POST   /v1/jobs                same body → async job id
//	GET    /v1/jobs/{id}           poll an async job (live progress while running)
//	GET    /v1/jobs/{id}/events    stream the job's trace events as SSE
//	POST   /v1/sessions            DIMACS body → warm incremental session id
//	POST   /v1/sessions/{id}/solve JSON step (pop/push/add/assumptions) → result
//	GET    /v1/sessions/{id}       session info
//	DELETE /v1/sessions/{id}       close a session (parks the warm solver)
//	GET    /healthz                liveness (503 while draining)
//
// -log-format turns on the structured access log on stderr: one line per
// request (method, path, status, bytes, duration, request id, cache/dedup
// outcome) as logfmt-style text or JSON objects, sampled under flood.
// Every response carries an X-Request-ID (echoed from the request when
// well-formed, generated otherwise) that correlates the access line with
// journal records, streamed trace events, and job views.
//
// -event-ring/-event-queue/-sse-heartbeat size the live telemetry layer:
// each async job keeps its last -event-ring trace events for Last-Event-ID
// replay, each SSE subscriber buffers up to -event-queue pending events
// (beyond that events are dropped and counted — a slow client never slows
// the solve), and idle streams emit a keep-alive comment every
// -sse-heartbeat.
//
// The -session-* flags bound the warm incremental sessions behind
// /v1/sessions: at most -session-max live sessions (LRU-evicted beyond
// that), each expiring after -session-ttl idle and closed early if its
// solver's footprint estimate exceeds -session-max-mem bytes. Sessions are
// not journaled — a restart loses them; clients recreate on 404 and the
// warm pool usually makes the recreation cheap.
//
// -model loads a trained selector (see `neuroselect train`) so every
// request gets the paper's one-time policy inference; without it all
// requests solve under the default policy (or a ?policy= override).
//
// -journal enables the durable job journal: async jobs are fsync'd to
// DIR/journal.jsonl before they are acknowledged, and a restart with the
// same -journal directory replays any jobs a crash left pending.
// -max-retries/-retry-base govern re-admission of transiently failed
// async jobs, and the -breaker-* flags tune the circuit breaker that
// degrades a failing selector model to the default policy.
//
// SIGINT/SIGTERM starts a graceful drain: new submissions get 503,
// queued and in-flight jobs finish, then the listener closes. A second
// signal aborts immediately.
//
// # Cluster mode
//
// -coordinator turns the process into a stateless routing tier instead
// of a solver: it consistent-hashes each upload's canonical formula hash
// across the -replicas list (comma-separated base URLs of backend-mode
// solver processes), so identical formulas always land on the same
// replica and that replica's result cache and warm-session pool serve
// the whole cluster. The coordinator proxies the entire /v1 surface —
// including SSE event streams and session operations with strict
// affinity — probes each replica's /healthz every -probe-interval
// (ejecting it from routing after -fail-threshold consecutive failures
// and readmitting it on the first success), and retries idempotent
// requests on the ring's next replica after a transport-level failure.
// Every proxied response carries X-Backend naming the replica that
// produced it.
//
// Replicas behind a coordinator should run with -backend-name: the name
// appears in X-Backend and prefixes job/session ids so ids are unique
// across the cluster. See OPERATIONS.md for the full deployment runbook
// and README.md for a copy-pasteable local cluster.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"neuroselect"
	"neuroselect/internal/cluster"
	"neuroselect/internal/obs"
	"neuroselect/internal/portfolio"
	"neuroselect/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "HTTP listen address for the solving API (:0 picks a port, printed on startup)")
	workers := flag.Int("workers", 0, "solver worker pool size (0 = all CPUs)")
	queue := flag.Int("queue", 64, "admission-queue depth; a full queue sheds requests with 429")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "ceiling for the per-request ?timeout= and the default when absent")
	cacheSize := flag.Int("cache-size", 256, "result-cache capacity in entries (negative disables caching)")
	maxBody := flag.Int64("max-body", 64<<20, "maximum request body size in bytes (decompressed)")
	modelPath := flag.String("model", "", "trained selector model file; empty serves with the default policy only")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /healthz and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "how long a graceful shutdown waits for queued and in-flight jobs")
	journalDir := flag.String("journal", "", "directory for the durable job journal; empty disables journaling and crash recovery")
	maxRetries := flag.Int("max-retries", 2, "re-admissions of a transiently failed async job before the failure is terminal (0 disables retries)")
	retryBase := flag.Duration("retry-base", 100*time.Millisecond, "base of the jittered exponential retry backoff")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive selector-inference failures that open the circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 10*time.Second, "how long an open breaker waits before probing the selector again")
	breakerMaxLatency := flag.Duration("breaker-max-latency", 0, "inference slower than this counts as a breaker failure (0 disables latency tripping)")
	sessionMax := flag.Int("session-max", 64, "maximum live warm incremental sessions; creating past the bound evicts the least-recently-used idle one")
	sessionTTL := flag.Duration("session-ttl", 5*time.Minute, "idle time after which a warm session (or parked pool solver) expires")
	sessionMaxMem := flag.Int64("session-max-mem", 256<<20, "per-session solver footprint cap in bytes; a solve that grows past it closes the session")
	logFormat := flag.String("log-format", "off", "structured access log on stderr: off, text, or json (one line per request, sampled under flood)")
	sseHeartbeat := flag.Duration("sse-heartbeat", 15*time.Second, "keep-alive comment interval on idle SSE event streams")
	eventRing := flag.Int("event-ring", 256, "per-job replay ring for GET /v1/jobs/{id}/events, in trace events")
	eventQueue := flag.Int("event-queue", 256, "per-subscriber SSE queue depth; events past it are dropped and counted, never block the solve")
	backendName := flag.String("backend-name", "", "cluster backend mode: name this replica (sets X-Backend on responses and prefixes job/session ids)")
	coordinator := flag.Bool("coordinator", false, "run as a cluster coordinator: route requests across -replicas instead of solving locally")
	replicas := flag.String("replicas", "", "coordinator mode: comma-separated backend base URLs (e.g. http://10.0.0.1:8080,http://10.0.0.2:8080)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "coordinator mode: per-backend /healthz probe cadence")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "coordinator mode: timeout for one health probe")
	failThreshold := flag.Int("fail-threshold", 2, "coordinator mode: consecutive probe failures that eject a backend from routing (one success readmits)")
	flag.Parse()

	if *coordinator {
		return runCoordinator(coordinatorOpts{
			addr:          *addr,
			replicas:      *replicas,
			probeInterval: *probeInterval,
			probeTimeout:  *probeTimeout,
			failThreshold: *failThreshold,
			maxBody:       *maxBody,
			metricsAddr:   *metricsAddr,
			drainTimeout:  *drainTimeout,
		})
	}

	var accessLog *slog.Logger
	switch *logFormat {
	case "off", "":
	case "text":
		accessLog = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		accessLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		return fail(fmt.Errorf("bad -log-format %q: want off, text, or json", *logFormat))
	}

	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg, time.Now())
	if *metricsAddr != "" {
		msrv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			return fail(err)
		}
		defer msrv.Close()
		fmt.Printf("metrics listening on %s\n", msrv.Addr())
	}

	var sel *portfolio.Selector
	if *modelPath != "" {
		mf, err := os.Open(*modelPath)
		if err != nil {
			return fail(err)
		}
		model, err := neuroselect.LoadModel(mf)
		mf.Close()
		if err != nil {
			return fail(err)
		}
		sel = portfolio.NewSelector(model)
		sel.Obs = reg
		fmt.Printf("selector model loaded from %s\n", *modelPath)
	}

	svc, err := server.New(server.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		MaxTimeout:        *maxTimeout,
		CacheSize:         *cacheSize,
		MaxBodyBytes:      *maxBody,
		JournalDir:        *journalDir,
		MaxRetries:        *maxRetries,
		RetryBase:         *retryBase,
		BreakerThreshold:  *breakerThreshold,
		BreakerCooldown:   *breakerCooldown,
		BreakerMaxLatency: *breakerMaxLatency,
		SessionMax:        *sessionMax,
		SessionTTL:        *sessionTTL,
		SessionMaxMem:     *sessionMaxMem,
		EventRing:         *eventRing,
		EventQueue:        *eventQueue,
		SSEHeartbeat:      *sseHeartbeat,
		AccessLog:         accessLog,
		BackendName:       *backendName,
		Selector:          sel,
		Registry:          reg,
	})
	if err != nil {
		return fail(err)
	}
	if *journalDir != "" {
		fmt.Printf("job journal at %s\n", *journalDir)
	}

	httpSrv := &http.Server{Handler: svc.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("solving API listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return fail(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process via the default handler
	fmt.Println("draining: refusing new work, finishing queued and in-flight jobs")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "neuroselect-serve: drain:", err)
		svc.Close()
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "neuroselect-serve: shutdown:", err)
	}
	fmt.Println("drained; bye")
	return 0
}

// coordinatorOpts carries the -coordinator mode's flag values.
type coordinatorOpts struct {
	addr          string
	replicas      string
	probeInterval time.Duration
	probeTimeout  time.Duration
	failThreshold int
	maxBody       int64
	metricsAddr   string
	drainTimeout  time.Duration
}

// runCoordinator is the -coordinator main loop: build the routing tier,
// serve it, and on SIGINT/SIGTERM drain (healthz flips to 503 so load
// balancers back off, in-flight proxied requests finish) before the
// listener closes.
func runCoordinator(opts coordinatorOpts) int {
	var urls []string
	for _, u := range strings.Split(opts.replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return fail(errors.New("-coordinator requires -replicas (comma-separated backend base URLs)"))
	}

	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg, time.Now())
	if opts.metricsAddr != "" {
		msrv, err := obs.Serve(opts.metricsAddr, reg)
		if err != nil {
			return fail(err)
		}
		defer msrv.Close()
		fmt.Printf("metrics listening on %s\n", msrv.Addr())
	}

	coord, err := cluster.New(cluster.Config{
		Replicas:      urls,
		ProbeInterval: opts.probeInterval,
		ProbeTimeout:  opts.probeTimeout,
		FailThreshold: opts.failThreshold,
		MaxBodyBytes:  opts.maxBody,
		Registry:      reg,
	})
	if err != nil {
		return fail(err)
	}
	defer coord.Close()

	httpSrv := &http.Server{Handler: coord.Handler()}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("cluster coordinator listening on %s (%d replicas)\n", ln.Addr(), len(urls))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return fail(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("draining: refusing new work, finishing in-flight proxied requests")

	coord.Drain()
	drainCtx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "neuroselect-serve: shutdown:", err)
	}
	fmt.Println("drained; bye")
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "neuroselect-serve:", err)
	return 1
}
