// Command satgen writes synthetic DIMACS instances from the generator
// families used throughout the reproduction.
//
// Usage:
//
//	satgen -family random -n 120 -seed 3 > inst.cnf
//	satgen -family pigeonhole -n 7 > php7.cnf
//	satgen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"neuroselect/internal/cnf"
	"neuroselect/internal/gen"
)

func main() {
	family := flag.String("family", "random", "instance family (see -list)")
	n := flag.Int("n", 100, "primary size parameter (variables, holes, vertices, ...)")
	seed := flag.Int64("seed", 1, "generator seed")
	sat := flag.Bool("sat", true, "prefer the satisfiable variant where the family supports both")
	list := flag.Bool("list", false, "list families and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.TrimSpace(`
random      uniform random 3-SAT at the phase transition (n = variables)
community   community-structured random 3-SAT (n = variables)
powerlaw    scale-free random 3-SAT with power-law occurrences (n = variables)
pigeonhole  PHP(n+1, n), always UNSAT (n = holes)
tseitin     Tseitin over a random cubic graph (n = vertices; -sat selects polarity)
parity      random XOR system from a hidden assignment (n = variables)
coloring    random graph 4-coloring (n = vertices)
queens      n-queens
miter       combinational equivalence miter (n = inputs; -sat=false is the equivalent/UNSAT case)
bmc         bounded-model-checking counter (n = steps; -sat selects polarity)
subsetsum   subset-sum via adder circuits (n = values; -sat selects polarity)`))
		return
	}

	var inst gen.Instance
	switch *family {
	case "random":
		inst = gen.RandomKSAT(*n, int(4.26*float64(*n)), 3, *seed)
	case "community":
		inst = gen.CommunityKSAT(*n, int(4.2*float64(*n)), 3, 5, 0.85, *seed)
	case "powerlaw":
		inst = gen.PowerLawKSAT(*n, int(4.4*float64(*n)), 3, 0.9, *seed)
	case "pigeonhole":
		inst = gen.Pigeonhole(*n)
	case "tseitin":
		inst = gen.Tseitin(*n, 3, *sat, *seed)
	case "parity":
		inst = gen.ParityChain(*n, (*n*4)/5, 5, *sat, *seed)
	case "coloring":
		inst = gen.GraphColoring(*n, int(4.6*float64(*n)), 4, *seed)
	case "queens":
		inst = gen.NQueens(*n)
	case "miter":
		inst = gen.Miter(*n, 20**n, !*sat, *seed)
	case "bmc":
		target := uint64(*n + *n/2)
		if !*sat {
			target = uint64(2**n + 3)
		}
		inst = gen.BMCCounter(6, *n, target)
	case "subsetsum":
		inst = gen.SubsetSum(*n, 50, *sat, *seed)
	default:
		fmt.Fprintf(os.Stderr, "satgen: unknown family %q (use -list)\n", *family)
		os.Exit(2)
	}
	if err := cnf.WriteDIMACS(os.Stdout, inst.F,
		fmt.Sprintf("generator: %s", inst.Name),
		fmt.Sprintf("expected: %s", inst.Expected)); err != nil {
		fmt.Fprintln(os.Stderr, "satgen:", err)
		os.Exit(1)
	}
}
