package main

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"neuroselect/internal/cnf"
	"neuroselect/internal/portfolio"
	"neuroselect/internal/solver"
)

// runPortfolio is the -portfolio solve path: an N-worker shared-clause
// portfolio instead of a single solver. Deterministic mode prints no
// wall-clock quantity anywhere, so two runs of
//
//	satsolve -portfolio N -deterministic file.cnf
//
// produce byte-identical output for any N — the property the check.sh
// smoke diffs.
func runPortfolio(f *cnf.Formula, cfg portfolio.Config, timeout time.Duration, stats, model, statsJSON bool) int {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	rep, err := portfolio.SolveParallelContext(ctx, f, cfg)
	if err != nil {
		return fail(err)
	}
	if stats {
		st := rep.Result.Stats
		fmt.Printf("c portfolio workers=%d deterministic=%v rounds=%d winner=%q\n",
			rep.Workers, rep.Deterministic, rep.Rounds, rep.Winner)
		for _, ex := range rep.Exchange {
			fmt.Printf("c worker %d config=%s exported=%d imported=%d filtered=%d dropped=%d\n",
				ex.Worker, ex.Config, ex.Exported, ex.Imported, ex.Filtered, ex.Dropped)
		}
		fmt.Printf("c decisions=%d propagations=%d conflicts=%d restarts=%d learned=%d imported=%d\n",
			st.Decisions, st.Propagations, st.Conflicts, st.Restarts, st.Learned, st.Imported)
	}
	code := 0
	switch rep.Result.Status {
	case solver.Sat:
		fmt.Println("s SATISFIABLE")
		if model {
			fmt.Print("v")
			for v := 1; v <= f.NumVars; v++ {
				l := v
				if !rep.Result.Model[v] {
					l = -v
				}
				fmt.Printf(" %d", l)
			}
			fmt.Println(" 0")
		}
		code = 10
	case solver.Unsat:
		fmt.Println("s UNSATISFIABLE")
		code = 20
	default:
		if c := stopComment(rep.Result.Stop); c != "" {
			fmt.Println("c " + c)
		}
		fmt.Println("s UNKNOWN")
	}
	if statsJSON {
		if err := printPortfolioJSON(rep); err != nil {
			return fail(err)
		}
	}
	return code
}

// printPortfolioJSON emits the portfolio statistics as one JSON object on
// stdout: the single-solver -stats-json schema (status/policy/stop/stats)
// extended, append-only, with a "portfolio" block. prop_freq_hash is the
// winner's propagation-frequency digest and pseudo_time_us its propagation
// count — both reproducible fingerprints; wall-clock time is deliberately
// absent.
func printPortfolioJSON(rep portfolio.ParallelReport) error {
	doc := struct {
		Status    string       `json:"status"`
		Policy    string       `json:"policy,omitempty"`
		Stop      string       `json:"stop,omitempty"`
		Stats     solver.Stats `json:"stats"`
		Portfolio struct {
			Workers       int                       `json:"workers"`
			Deterministic bool                      `json:"deterministic"`
			Winner        string                    `json:"winner,omitempty"`
			WinnerIndex   int                       `json:"winner_index"`
			Rounds        int                       `json:"rounds"`
			PropFreqHash  string                    `json:"prop_freq_hash,omitempty"`
			PseudoTimeUS  int64                     `json:"pseudo_time_us"`
			Exchange      []portfolio.ExchangeStats `json:"exchange"`
			Failures      []string                  `json:"failures,omitempty"`
		} `json:"portfolio"`
	}{Status: rep.Result.Status.String(), Policy: rep.Winner, Stats: rep.Result.Stats}
	if rep.Result.Stop != nil {
		doc.Stop = rep.Result.Stop.Error()
	}
	doc.Portfolio.Workers = rep.Workers
	doc.Portfolio.Deterministic = rep.Deterministic
	doc.Portfolio.Winner = rep.Winner
	doc.Portfolio.WinnerIndex = rep.WinnerIndex
	doc.Portfolio.Rounds = rep.Rounds
	if rep.WinnerIndex >= 0 {
		doc.Portfolio.PropFreqHash = fmt.Sprintf("%016x", rep.PropFreqHash)
	}
	doc.Portfolio.PseudoTimeUS = int64(rep.PseudoTime / time.Microsecond)
	doc.Portfolio.Exchange = rep.Exchange
	doc.Portfolio.Failures = rep.Failures
	b, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(b))
	return err
}
