// Command satsolve is a DIMACS CNF solver with selectable clause-deletion
// policies.
//
// Usage:
//
//	satsolve [-policy default|frequency|activity|size] [-conflicts N] [-timeout D] [-stats] file.cnf
//
// Reads from stdin when no file is given. Exits 10 for SAT, 20 for UNSAT
// (the SAT-competition convention), 0 for unknown (budget or timeout
// expired; a "c timeout"-style comment names the cause), 1 for errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"neuroselect"
	"neuroselect/internal/cnf"
	"neuroselect/internal/solver"
)

func usage() {
	fmt.Fprint(flag.CommandLine.Output(), `usage: satsolve [flags] [file.cnf]

Reads a DIMACS CNF from the file, or from stdin when no file is given.

exit codes:
  10  satisfiable (s SATISFIABLE, model on v lines)
  20  unsatisfiable (s UNSATISFIABLE)
   0  unknown: a budget or the -timeout wall-clock deadline expired
      (the cause is printed as a comment line before "s UNKNOWN")
   1  error (bad input, bad flags, I/O failure)

flags:
`)
	flag.PrintDefaults()
}

func main() {
	// The solve runs inside run() so profile writers and file closes (all
	// deferred) execute before the SAT-competition exit code is raised.
	os.Exit(run())
}

func run() int {
	policy := flag.String("policy", "default", "clause-deletion policy: default, frequency, activity, size")
	conflicts := flag.Int64("conflicts", 0, "conflict budget (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "wall-clock timeout, e.g. 30s or 5m (0 = unlimited)")
	stats := flag.Bool("stats", false, "print solver statistics")
	model := flag.Bool("model", true, "print the satisfying assignment (v lines)")
	simplify := flag.Bool("simplify", false, "preprocess with unit propagation, pure literals, subsumption")
	proofPath := flag.String("proof", "", "write a DRAT proof to this file (incompatible with -simplify)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Usage = usage
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "satsolve:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush unreachable allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "satsolve:", err)
			}
		}()
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		in = f
	}
	f, err := cnf.ParseDIMACS(in)
	if err != nil {
		return fail(err)
	}
	cfg := neuroselect.SolveConfig{
		Policy:       *policy,
		MaxConflicts: *conflicts,
		Preprocess:   *simplify,
		Timeout:      *timeout,
	}
	var proofFile *os.File
	if *proofPath != "" {
		proofFile, err = os.Create(*proofPath)
		if err != nil {
			return fail(err)
		}
		defer proofFile.Close()
		cfg.Proof = neuroselect.NewProofWriter(proofFile)
	}
	res, err := neuroselect.SolveContext(context.Background(), f, cfg)
	if err != nil && !errors.Is(err, neuroselect.ErrSolvePanic) {
		return fail(err)
	}
	if cfg.Proof != nil {
		if err := cfg.Proof.Flush(); err != nil {
			return fail(err)
		}
	}
	if *stats {
		st := res.Stats
		fmt.Printf("c policy=%s decisions=%d propagations=%d conflicts=%d restarts=%d reductions=%d learned=%d deleted=%d\n",
			*policy, st.Decisions, st.Propagations, st.Conflicts, st.Restarts, st.Reductions, st.Learned, st.Deleted)
	}
	switch res.Status {
	case solver.Sat:
		fmt.Println("s SATISFIABLE")
		if *model {
			fmt.Print("v")
			for v := 1; v <= f.NumVars; v++ {
				l := v
				if !res.Model[v] {
					l = -v
				}
				fmt.Printf(" %d", l)
			}
			fmt.Println(" 0")
		}
		return 10
	case solver.Unsat:
		fmt.Println("s UNSATISFIABLE")
		return 20
	default:
		if c := stopComment(res.Stop); c != "" {
			fmt.Println("c " + c)
		}
		fmt.Println("s UNKNOWN")
		return 0
	}
}

// stopComment maps an Unknown result's stop cause to the comment line
// printed before "s UNKNOWN".
func stopComment(stop error) string {
	switch {
	case stop == nil:
		return ""
	case errors.Is(stop, solver.ErrDeadline):
		return "timeout"
	case errors.Is(stop, solver.ErrCanceled):
		return "canceled"
	case errors.Is(stop, solver.ErrConflictBudget):
		return "conflict budget exhausted"
	case errors.Is(stop, solver.ErrPropagationBudget):
		return "propagation budget exhausted"
	case errors.Is(stop, solver.ErrSolvePanic):
		return "internal failure contained: " + stop.Error()
	default:
		return stop.Error()
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "satsolve:", err)
	return 1
}
