// Command satsolve is a DIMACS CNF solver with selectable clause-deletion
// policies.
//
// Usage:
//
//	satsolve [-policy default|frequency|activity|size] [-conflicts N] [-timeout D]
//	         [-stats] [-stats-json] [-metrics-addr HOST:PORT] [-trace out.jsonl] file.cnf
//
// Reads from stdin when no file is given. Exits 10 for SAT, 20 for UNSAT
// (the SAT-competition convention), 0 for unknown (budget or timeout
// expired; a "c timeout"-style comment names the cause), 1 for errors.
//
// -metrics-addr serves live telemetry (/metrics Prometheus text,
// /metrics.json, /healthz, /debug/pprof) for the duration of the solve;
// -trace streams per-window search events as JSONL; -stats-json prints the
// final statistics as one JSON object after the result lines.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"neuroselect"
	"neuroselect/internal/cnf"
	"neuroselect/internal/obs"
	"neuroselect/internal/portfolio"
	"neuroselect/internal/solver"
)

func usage() {
	fmt.Fprint(flag.CommandLine.Output(), `usage: satsolve [flags] [file.cnf]

Reads a DIMACS CNF from the file, or from stdin when no file is given.

exit codes:
  10  satisfiable (s SATISFIABLE, model on v lines)
  20  unsatisfiable (s UNSATISFIABLE)
   0  unknown: a budget or the -timeout wall-clock deadline expired
      (the cause is printed as a comment line before "s UNKNOWN")
   1  error (bad input, bad flags, I/O failure)

flags:
`)
	flag.PrintDefaults()
}

func main() {
	// The solve runs inside run() so profile writers and file closes (all
	// deferred) execute before the SAT-competition exit code is raised.
	os.Exit(run())
}

func run() int {
	policy := flag.String("policy", "default", "clause-deletion policy: default, frequency, activity, size")
	conflicts := flag.Int64("conflicts", 0, "conflict budget (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "wall-clock timeout, e.g. 30s or 5m (0 = unlimited)")
	stats := flag.Bool("stats", false, "print solver statistics")
	model := flag.Bool("model", true, "print the satisfying assignment (v lines)")
	simplify := flag.Bool("simplify", false, "preprocess with unit propagation, pure literals, subsumption")
	proofPath := flag.String("proof", "", "write a DRAT proof to this file (incompatible with -simplify)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /healthz and /debug/pprof on this address during the solve (e.g. 127.0.0.1:9090; :0 picks a port, printed as a comment)")
	tracePath := flag.String("trace", "", "stream per-window solver events to this file as JSONL")
	statsJSON := flag.Bool("stats-json", false, "print the final solver statistics as one JSON object on the last stdout line")
	portfolioN := flag.Int("portfolio", 0, "solve with an N-worker shared-clause portfolio (0 = single solver)")
	deterministic := flag.Bool("deterministic", false, "with -portfolio: lockstep exchange rounds, output byte-identical for any worker count")
	flag.Usage = usage
	flag.Parse()

	if *portfolioN > 0 {
		// The portfolio carries its own per-worker policies, and neither the
		// DRAT writer nor the preprocessor is threaded through it.
		switch {
		case *policy != "default":
			return fail(errors.New("-policy cannot be combined with -portfolio (workers carry their own policies)"))
		case *proofPath != "":
			return fail(errors.New("-proof cannot be combined with -portfolio"))
		case *simplify:
			return fail(errors.New("-simplify cannot be combined with -portfolio"))
		}
	}
	if *deterministic && *portfolioN <= 0 {
		return fail(errors.New("-deterministic requires -portfolio"))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "satsolve:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush unreachable allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "satsolve:", err)
			}
		}()
	}

	var tracers []obs.Tracer
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		obs.RegisterProcessMetrics(reg, time.Now())
		srv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			return fail(err)
		}
		defer srv.Close()
		fmt.Printf("c metrics listening on %s\n", srv.Addr())
		tracers = append(tracers, obs.NewMetricsTracer(reg))
	}
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			return fail(err)
		}
		jt := obs.NewJSONLTracer(tf)
		if reg != nil {
			jt.CountDropsIn(reg) // lost trace events surface on /metrics
		}
		defer func() {
			if err := jt.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "satsolve: trace:", err)
			}
			if n := jt.Dropped(); n > 0 {
				fmt.Fprintf(os.Stderr, "satsolve: trace: %d events lost to a write error\n", n)
			}
			tf.Close()
		}()
		tracers = append(tracers, jt)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		in = f
	}
	f, err := cnf.ParseDIMACS(in)
	if err != nil {
		return fail(err)
	}
	if *portfolioN > 0 {
		return runPortfolio(f, portfolio.Config{
			Workers:       *portfolioN,
			Deterministic: *deterministic,
			MaxConflicts:  *conflicts,
			Obs:           reg,
			Tracer:        obs.Multi(tracers...),
		}, *timeout, *stats, *model, *statsJSON)
	}
	cfg := neuroselect.SolveConfig{
		Policy:       *policy,
		MaxConflicts: *conflicts,
		Preprocess:   *simplify,
		Timeout:      *timeout,
		Tracer:       obs.Multi(tracers...),
	}
	var proofFile *os.File
	if *proofPath != "" {
		proofFile, err = os.Create(*proofPath)
		if err != nil {
			return fail(err)
		}
		defer proofFile.Close()
		cfg.Proof = neuroselect.NewProofWriter(proofFile)
	}
	res, err := neuroselect.SolveContext(context.Background(), f, cfg)
	if err != nil && !errors.Is(err, neuroselect.ErrSolvePanic) {
		return fail(err)
	}
	if cfg.Proof != nil {
		if err := cfg.Proof.Flush(); err != nil {
			return fail(err)
		}
	}
	if *stats {
		st := res.Stats
		fmt.Printf("c policy=%s decisions=%d propagations=%d conflicts=%d restarts=%d reductions=%d learned=%d deleted=%d\n",
			*policy, st.Decisions, st.Propagations, st.Conflicts, st.Restarts, st.Reductions, st.Learned, st.Deleted)
	}
	code := 0
	switch res.Status {
	case solver.Sat:
		fmt.Println("s SATISFIABLE")
		if *model {
			fmt.Print("v")
			for v := 1; v <= f.NumVars; v++ {
				l := v
				if !res.Model[v] {
					l = -v
				}
				fmt.Printf(" %d", l)
			}
			fmt.Println(" 0")
		}
		code = 10
	case solver.Unsat:
		fmt.Println("s UNSATISFIABLE")
		code = 20
	default:
		if c := stopComment(res.Stop); c != "" {
			fmt.Println("c " + c)
		}
		fmt.Println("s UNKNOWN")
	}
	if *statsJSON {
		if err := printStatsJSON(*policy, res); err != nil {
			return fail(err)
		}
	}
	return code
}

// printStatsJSON emits the final statistics as one JSON object on stdout;
// the schema is solver.Stats' JSON tags wrapped with the outcome.
func printStatsJSON(policy string, res neuroselect.Result) error {
	doc := struct {
		Status string       `json:"status"`
		Policy string       `json:"policy"`
		Stop   string       `json:"stop,omitempty"`
		Stats  solver.Stats `json:"stats"`
	}{Status: res.Status.String(), Policy: policy, Stats: res.Stats}
	if res.Stop != nil {
		doc.Stop = res.Stop.Error()
	}
	b, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(b))
	return err
}

// stopComment maps an Unknown result's stop cause to the comment line
// printed before "s UNKNOWN".
func stopComment(stop error) string {
	switch {
	case stop == nil:
		return ""
	case errors.Is(stop, solver.ErrDeadline):
		return "timeout"
	case errors.Is(stop, solver.ErrCanceled):
		return "canceled"
	case errors.Is(stop, solver.ErrConflictBudget):
		return "conflict budget exhausted"
	case errors.Is(stop, solver.ErrPropagationBudget):
		return "propagation budget exhausted"
	case errors.Is(stop, solver.ErrSolvePanic):
		return "internal failure contained: " + stop.Error()
	default:
		return stop.Error()
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "satsolve:", err)
	return 1
}
